#include "dist/greedy_protocol.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "dist/bfs_tree.hpp"
#include "dist/leader_election.hpp"
#include "dist/reliable_link.hpp"
#include "graph/traversal.hpp"

namespace mcds::dist {

namespace {

// Small-set insertion: the per-node label/bidder collections are bounded
// by the local component count (≤ 5 adjacent MIS components in a UDG)
// resp. the 2-hop candidate count, so a flat vector with a linear
// membership probe beats the former std::set both in allocation count
// and locality. Returns true if \p x was newly inserted.
bool insert_unique(std::vector<NodeId>& xs, NodeId x) {
  if (std::find(xs.begin(), xs.end(), x) != xs.end()) return false;
  xs.push_back(x);
  return true;
}

// Phase A of an epoch: members agree on component labels (min member id
// in the component) by flooding along member-member edges.
class LabelProtocol final : public Protocol {
 public:
  LabelProtocol(Transport& rt, const std::vector<bool>& member)
      : rt_(rt), member_(member), label_(rt.topology().num_nodes()) {
    for (NodeId v = 0; v < label_.size(); ++v) label_[v] = v;
  }

  void start(NodeId self) override {
    if (!member_[self]) return;
    rt_.broadcast(self, Message{0, 0, static_cast<std::int64_t>(self), 0});
  }

  void step(NodeId self, std::span<const Message> inbox) override {
    if (!member_[self]) return;  // radio noise for non-members
    bool improved = false;
    for (const Message& m : inbox) {
      if (!member_[m.from]) continue;
      const auto lbl = static_cast<NodeId>(m.a);
      if (lbl < label_[self]) {
        label_[self] = lbl;
        improved = true;
      }
    }
    if (improved) {
      rt_.broadcast(self,
                    Message{0, 0, static_cast<std::int64_t>(label_[self]), 0});
    }
  }

  [[nodiscard]] const std::vector<NodeId>& labels() const { return label_; }

 private:
  Transport& rt_;
  const std::vector<bool>& member_;
  std::vector<NodeId> label_;
};

// Phase B of an epoch: gain bidding over two hops, round-indexed with a
// configurable delivery window (phase_len = 1 in the synchronous model):
// round 1·pl: labels are in; candidates with gain >= 1 broadcast
//             BID(gain, id);
// rounds in between: every node forwards each distinct bid once (2-hop
//             spread);
// round 3·pl: bidders that heard no better bid join and announce it.
class BidProtocol final : public Protocol {
 public:
  static constexpr std::int32_t kLabel = 1;
  static constexpr std::int32_t kBid = 2;
  static constexpr std::int32_t kJoin = 3;

  BidProtocol(Transport& rt, const std::vector<bool>& member,
              const std::vector<NodeId>& label, std::size_t phase_len = 1)
      : rt_(rt),
        member_(member),
        label_(label),
        adjacent_labels_(rt.topology().num_nodes()),
        best_rival_gain_(rt.topology().num_nodes(), 0),
        best_rival_id_(rt.topology().num_nodes(), graph::kNoNode),
        my_gain_(rt.topology().num_nodes(), 0),
        seen_bidders_(rt.topology().num_nodes()),
        won_(rt.topology().num_nodes(), 0),
        phase_len_(phase_len) {}

  void start(NodeId self) override {
    if (member_[self]) {
      rt_.broadcast(self, Message{0, kLabel,
                                  static_cast<std::int64_t>(label_[self]), 0});
    }
  }

  void on_round_begin() override { ++round_; }

  void step(NodeId self, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      switch (m.type) {
        case kLabel:
          if (!member_[self]) {
            insert_unique(adjacent_labels_[self], static_cast<NodeId>(m.a));
          }
          break;
        case kBid: {
          const auto gain = static_cast<std::size_t>(m.a);
          const auto bidder = static_cast<NodeId>(m.b);
          if (bidder != self && insert_unique(seen_bidders_[self], bidder)) {
            consider_rival(self, gain, bidder);
            // Relay only first-hand bids, so each bid travels exactly
            // two hops — the competition stays local.
            if (m.from == bidder) rt_.broadcast(self, m);
          }
          break;
        }
        case kJoin:
          break;  // membership updates are applied by the orchestrator
        default:
          throw std::logic_error("greedy protocol: unknown message");
      }
    }

    if (round_ == phase_len_ && !member_[self]) {
      // Labels are in; compute the gain and bid if positive.
      const std::size_t distinct = adjacent_labels_[self].size();
      if (distinct >= 2) {
        my_gain_[self] = distinct - 1;
        rt_.broadcast(self,
                      Message{0, kBid,
                              static_cast<std::int64_t>(my_gain_[self]),
                              static_cast<std::int64_t>(self)});
      }
    }
    if (round_ == 3 * phase_len_ && my_gain_[self] >= 1) {
      // All bids within two hops have arrived (first-hand by 2·pl,
      // relayed by 3·pl); decide.
      const bool beaten =
          best_rival_id_[self] != graph::kNoNode &&
          (best_rival_gain_[self] > my_gain_[self] ||
           (best_rival_gain_[self] == my_gain_[self] &&
            best_rival_id_[self] < self));
      if (!beaten) {
        // Per-node byte flag instead of a shared push_back: all wins
        // land in the same round, so the serial winner order was
        // ascending node id anyway — winners() reproduces it exactly.
        won_[self] = 1;
        rt_.broadcast(self, Message{0, kJoin, 0, 0});
      }
    }
  }

  /// Keeps the runtime ticking through the stretched phase gaps; with
  /// phase_len == 1 the synchronous traffic pattern already spans every
  /// round, so the original quiescence rule is preserved exactly.
  [[nodiscard]] bool idle() const override {
    return phase_len_ == 1 || round_ >= 3 * phase_len_;
  }

  [[nodiscard]] std::vector<NodeId> winners() const {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < won_.size(); ++v) {
      if (won_[v] != 0) out.push_back(v);
    }
    return out;
  }

 private:
  void consider_rival(NodeId self, std::size_t gain, NodeId bidder) {
    if (member_[self]) return;
    if (best_rival_id_[self] == graph::kNoNode ||
        gain > best_rival_gain_[self] ||
        (gain == best_rival_gain_[self] && bidder < best_rival_id_[self])) {
      best_rival_gain_[self] = gain;
      best_rival_id_[self] = bidder;
    }
  }

  Transport& rt_;
  const std::vector<bool>& member_;
  const std::vector<NodeId>& label_;
  std::vector<std::vector<NodeId>> adjacent_labels_;
  std::vector<std::size_t> best_rival_gain_;
  std::vector<NodeId> best_rival_id_;
  std::vector<std::size_t> my_gain_;
  std::vector<std::vector<NodeId>> seen_bidders_;
  std::vector<std::uint8_t> won_;  ///< byte per node: joined this epoch
  std::size_t round_ = 0;
  std::size_t phase_len_ = 1;
};

}  // namespace

DistGreedyResult distributed_greedy_cds(const Graph& g) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("distributed_greedy_cds: empty graph");
  }
  DistGreedyResult out;
  if (g.num_nodes() == 1) {
    out.mis.in_mis = {true};
    out.mis.mis = {0};
    out.cds = {0};
    return out;
  }

  const LeaderResult leader = elect_leader(g);
  out.total = leader.stats;
  const BfsTreeResult tree = build_bfs_tree(g, leader.leader);
  out.total += tree.stats;
  out.mis = elect_mis(g, tree.level);
  out.total += out.mis.stats;

  std::vector<bool> member = out.mis.in_mis;
  // Labels are node ids, so distinct-label counting is a stamped scan
  // over one reusable array instead of a per-epoch std::set.
  std::vector<std::size_t> label_stamp(g.num_nodes(), 0);
  const std::size_t max_epochs = out.mis.mis.size();  // q drops each epoch
  for (std::size_t epoch = 0; epoch < max_epochs; ++epoch) {
    // Phase A: component labels.
    Runtime label_rt(g);
    LabelProtocol labels(label_rt, member);
    out.total += label_rt.run(labels);
    std::size_t distinct = 0;
    const std::size_t stamp = epoch + 1;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!member[v]) continue;
      const NodeId lbl = labels.labels()[v];
      if (label_stamp[lbl] != stamp) {
        label_stamp[lbl] = stamp;
        ++distinct;
      }
    }
    if (distinct <= 1) break;

    // Phase B: bidding.
    ++out.epochs;
    Runtime bid_rt(g);
    BidProtocol bids(bid_rt, member, labels.labels());
    out.total += bid_rt.run(bids);
    const std::vector<NodeId> winners = bids.winners();
    if (winners.empty()) {
      throw std::logic_error(
          "distributed_greedy_cds: no winner although q > 1 (Lemma 9 "
          "guarantees the global maximum bidder wins)");
    }
    for (const NodeId w : winners) {
      member[w] = true;
      out.connectors.push_back(w);
    }
  }

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (member[v]) out.cds.push_back(v);
  }
  std::sort(out.connectors.begin(), out.connectors.end());
  return out;
}

DistGreedyResult distributed_greedy_cds(const Graph& g, const RunConfig& cfg,
                                        std::size_t round_offset) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("distributed_greedy_cds: empty graph");
  }
  DistGreedyResult out;
  if (g.num_nodes() == 1) {
    out.mis.in_mis = {true};
    out.mis.mis = {0};
    out.cds = {0};
    return out;
  }

  // One fault timeline threads through every phase: each runtime starts
  // at the global round where the previous one stopped.
  std::size_t offset = round_offset;
  const LeaderResult leader = elect_leader(g, cfg, offset);
  out.total = leader.stats;
  out.complete = leader.complete;
  offset += leader.stats.rounds;

  const BfsTreeResult tree = build_bfs_tree(g, leader.leader, cfg, offset);
  out.total += tree.stats;
  out.complete = out.complete && tree.complete;
  offset += tree.stats.rounds;

  out.mis = elect_mis(g, tree.level, cfg, offset);
  out.total += out.mis.stats;
  out.complete = out.complete && out.mis.complete;
  offset += out.mis.stats.rounds;

  const std::size_t phase_len =
      cfg.reliable ? reliable_delivery_bound(cfg.link) : 1;
  std::vector<bool> member = out.mis.in_mis;
  std::vector<std::size_t> label_stamp(g.num_nodes(), 0);
  const std::size_t max_epochs = std::max<std::size_t>(out.mis.mis.size(), 1);
  for (std::size_t epoch = 0; epoch < max_epochs; ++epoch) {
    // Phase A: component labels.
    FaultHarness label_h(g, cfg, offset, "greedy_label");
    LabelProtocol labels(label_h.net(), member);
    const RunStats label_stats = label_h.run(labels);
    out.total += label_stats;
    offset += label_stats.rounds;
    std::size_t distinct = 0;
    const std::size_t stamp = epoch + 1;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!member[v]) continue;
      const NodeId lbl = labels.labels()[v];
      if (label_stamp[lbl] != stamp) {
        label_stamp[lbl] = stamp;
        ++distinct;
      }
    }
    if (distinct <= 1) break;

    // Phase B: bidding.
    ++out.epochs;
    FaultHarness bid_h(g, cfg, offset, "greedy_bid");
    BidProtocol bids(bid_h.net(), member, labels.labels(), phase_len);
    const RunStats bid_stats = bid_h.run(bids);
    out.total += bid_stats;
    offset += bid_stats.rounds;
    const std::vector<NodeId> winners = bids.winners();
    if (winners.empty()) {
      // Lemma 9's guarantee needs every bid delivered; with losses the
      // epoch can come up dry. The component count cannot increase, so
      // stopping here is safe — the caller repairs what is missing.
      out.complete = false;
      break;
    }
    for (const NodeId w : winners) {
      member[w] = true;
      out.connectors.push_back(w);
    }
  }

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (member[v]) out.cds.push_back(v);
  }
  std::sort(out.connectors.begin(), out.connectors.end());
  return out;
}

}  // namespace mcds::dist
