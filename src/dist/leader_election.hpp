#pragma once

#include "dist/runtime.hpp"

/// \file leader_election.hpp
/// Minimum-id leader election by flooding: every node repeatedly
/// forwards the smallest id it has heard of; after (diameter + 1) quiet
/// rounds of no change the flood dies out and all nodes agree on the
/// minimum id. Requires a connected topology.

namespace mcds::dist {

/// Result of leader election.
struct LeaderResult {
  NodeId leader = 0;  ///< the elected (minimum-id) node
  RunStats stats;
  bool complete = true;  ///< all live nodes agree on the leader
};

/// Runs min-id flooding on \p g. Precondition: g connected, >= 1 node.
[[nodiscard]] LeaderResult elect_leader(const Graph& g);

/// Fault-aware overload: instead of throwing when the flood fails to
/// reach agreement (drops, crashes, partition), sets complete = false;
/// leader is then the view of the smallest-id live node.
[[nodiscard]] LeaderResult elect_leader(const Graph& g, const RunConfig& cfg,
                                        std::size_t round_offset = 0);

}  // namespace mcds::dist
