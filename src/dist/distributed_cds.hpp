#pragma once

#include "dist/bfs_tree.hpp"
#include "dist/connector_selection.hpp"
#include "dist/leader_election.hpp"
#include "dist/mis_election.hpp"

/// \file distributed_cds.hpp
/// End-to-end distributed WAF construction: leader election -> BFS tree
/// -> rank-based MIS election -> connector selection, with per-phase
/// message/round accounting. This is the algorithm whose approximation
/// ratio Section III bounds by 7⅓.

namespace mcds::dist {

/// Combined result of the four-phase distributed construction.
struct DistributedCdsResult {
  NodeId leader = 0;
  BfsTreeResult tree;
  MisElectionResult mis;
  ConnectorResult connectors;
  std::vector<NodeId> cds;  ///< final CDS, ascending node id

  RunStats leader_stats;
  RunStats total;  ///< all phases combined
  bool complete = true;  ///< every phase completed on all live nodes
};

/// Runs the full distributed construction on \p g. Precondition:
/// g connected with >= 1 node. For a single node the CDS is that node
/// and no messages are exchanged.
[[nodiscard]] DistributedCdsResult distributed_waf_cds(const Graph& g);

/// Fault-aware overload: the four phases run consecutively on one fault
/// timeline (each phase's runtime picks up where the previous one
/// stopped). complete ANDs the per-phase flags; under faults the
/// assembled cds must be validated by the caller.
[[nodiscard]] DistributedCdsResult distributed_waf_cds(const Graph& g,
                                                       const RunConfig& cfg,
                                                       std::size_t
                                                           round_offset = 0);

}  // namespace mcds::dist
