#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dyn/dynamic_cds.hpp"
#include "geom/vec2.hpp"
#include "serve/serve.hpp"

/// \file checkpoint.hpp
/// Crash-safe persistence of the server's dynamic-CDS state. The
/// checkpoint is *event-sourced*: it stores the base point set the
/// engine was constructed from plus the churn-op journal applied since,
/// not the engine's internal layers. Because dyn::DynamicCds is
/// deterministic, replaying the journal over the base points rebuilds
/// the engine byte-identically — restore_engine() then differentially
/// verifies the replay against the epoch / backbone-size / backbone-hash
/// recorded at save time and refuses a divergent restore.
///
/// On-disk format (little-endian, fixed-width):
///
///   magic    "MCDSCKPT"            8 bytes
///   version  u32                   kCheckpointVersion
///   size     u64                   payload byte count
///   crc32    u32                   CRC-32 (IEEE) of the payload
///   payload:
///     u64 n_points, then n_points * (f64 x, f64 y)
///     u64 n_ops,    then n_ops * (u8 kind, u32 node, f64 x, f64 y)
///     u64 epoch, u64 cds_size, u64 cds_hash
///
/// Durability discipline: save_checkpoint writes to "<path>.tmp",
/// flushes, then atomically renames over <path> — a crash mid-write
/// leaves the previous checkpoint intact, never a torn file. A torn,
/// truncated, bit-flipped or version-skewed file fails loudly in
/// load_checkpoint (CheckpointError), never silently restores garbage.

namespace mcds::serve {

inline constexpr char kCheckpointMagic[8] = {'M', 'C', 'D', 'S',
                                             'C', 'K', 'P', 'T'};
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Any load/restore failure: missing file, bad magic, wrong version,
/// truncation, checksum mismatch, or differential-verify divergence.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The event-sourced state: everything needed to rebuild the engine,
/// plus the expected-state fingerprint for differential verification.
struct CheckpointData {
  std::vector<geom::Vec2> base_points;
  std::vector<ChurnOp> journal;
  std::size_t epoch = 0;     ///< engine epoch at save time
  std::size_t cds_size = 0;  ///< backbone size at save time
  std::uint64_t cds_hash = 0;  ///< hash_backbone() at save time
};

/// FNV-1a over the backbone's node ids in order — the fingerprint the
/// differential verify compares.
[[nodiscard]] std::uint64_t hash_backbone(
    std::span<const graph::NodeId> cds) noexcept;

/// CRC-32 (IEEE 802.3, reflected) of \p bytes.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> bytes) noexcept;

/// Serializes \p data to \p path via tmp-file + atomic rename. Throws
/// std::runtime_error on I/O failure (disk full, unwritable dir).
void save_checkpoint(const std::string& path, const CheckpointData& data);

/// Parses and fully validates \p path (magic, version, size, CRC).
/// Throws CheckpointError naming what was wrong.
[[nodiscard]] CheckpointData load_checkpoint(const std::string& path);

/// Rebuilds the engine: constructs DynamicCds over base_points, replays
/// the journal, then differentially verifies epoch, backbone size and
/// backbone hash against the checkpoint's fingerprint. Throws
/// CheckpointError on divergence (a replay that does not reproduce the
/// saved state is a bug or a corrupted journal — refusing is the only
/// safe answer).
[[nodiscard]] std::unique_ptr<dyn::DynamicCds> restore_engine(
    const CheckpointData& data, const dyn::DynParams& params = {},
    const obs::Obs& obs = {});

/// Applies one churn op to \p engine (the single replay/serve path, so
/// live serving and restore replay cannot drift apart). Returns the
/// event's report.
dyn::EventReport apply_churn_op(dyn::DynamicCds& engine, const ChurnOp& op);

}  // namespace mcds::serve
