#include "serve/overload.hpp"

#include <stdexcept>

namespace mcds::serve {

void OverloadParams::validate() const {
  if (exit_depth >= enter_depth || exit_p95_s >= enter_p95_s) {
    throw std::invalid_argument(
        "OverloadParams: exit thresholds must sit strictly below entry "
        "thresholds (the hysteresis band)");
  }
  if (dwell_up == 0 || dwell_down == 0) {
    throw std::invalid_argument("OverloadParams: dwells must be >= 1");
  }
  if (max_level > 3) {
    throw std::invalid_argument("OverloadParams: max_level <= 3");
  }
}

OverloadController::OverloadController(OverloadParams params)
    : params_(params) {
  params_.validate();
}

std::size_t OverloadController::observe(double depth_fraction,
                                        double p95_seconds) {
  ++obs_n_;
  const bool over = depth_fraction > params_.enter_depth ||
                    p95_seconds > params_.enter_p95_s;
  const bool under = depth_fraction < params_.exit_depth &&
                     p95_seconds < params_.exit_p95_s;
  // Inside the hysteresis band (neither over nor under) both streaks
  // reset: the controller holds its level until the signal commits.
  over_streak_ = over ? over_streak_ + 1 : 0;
  under_streak_ = under ? under_streak_ + 1 : 0;
  if (over_streak_ >= params_.dwell_up && level_ < params_.max_level) {
    transitions_.push_back({obs_n_, level_, level_ + 1});
    ++level_;
    over_streak_ = 0;  // the next step needs a fresh streak
  } else if (under_streak_ >= params_.dwell_down && level_ > 0) {
    transitions_.push_back({obs_n_, level_, level_ - 1});
    --level_;
    under_streak_ = 0;
  }
  return level_;
}

}  // namespace mcds::serve
