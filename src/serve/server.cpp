#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/kmcds.hpp"

namespace mcds::serve {

namespace {
constexpr double seconds_between(TimePoint a, TimePoint b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

par::BatchOutcome solve_tier(const udg::UdgInstance& inst, Tier tier,
                             std::vector<NodeId>* trace) {
  if (tier == Tier::kGreedy) return par::solve_greedy(inst);
  core::KmParams kp;
  kp.k = tier == Tier::kKm22 ? 2 : 1;
  kp.m = tier == Tier::kKm22 ? 2 : 1;
  auto r = core::kmcds(inst.graph, kp, 0);
  par::BatchOutcome o;
  o.cds = std::move(r.backbone);
  o.dominators = r.dominators.size();
  o.nodes = inst.graph.num_nodes();
  if (trace) {
    trace->clear();
    trace->insert(trace->end(), r.connectors.begin(), r.connectors.end());
    trace->insert(trace->end(), r.augmenters.begin(), r.augmenters.end());
  }
  return o;
}

Server::Server(ServerParams params, const obs::Obs& obs)
    : params_(std::move(params)),
      obs_(obs),
      queue_(params_.queue_capacity),
      pool_(params_.threads),
      batch_(pool_, obs),
      overload_(params_.overload) {
  if (!params_.clock) {
    params_.clock = [] { return std::chrono::steady_clock::now(); };
  }
  if (!params_.initial_points.empty()) {
    base_points_ = params_.initial_points;
    engine_ =
        std::make_unique<dyn::DynamicCds>(base_points_, params_.dyn, obs_);
  }
  for (std::uint8_t s = 0; s < 7; ++s) {
    c_status_[s] = obs_.counter(std::string("serve.") +
                                to_string(static_cast<Status>(s)));
  }
  c_degraded_ = obs_.counter("serve.degraded");
  c_checkpoints_ = obs_.counter("serve.checkpoints");
  g_depth_ = obs_.gauge("serve.queue_depth");
  g_level_ = obs_.gauge("serve.overload_level");
  for (std::uint8_t t = 0; t < 3; ++t) {
    h_latency_[t] = obs_.histogram(std::string("serve.latency.") +
                                   to_string(static_cast<Tier>(t)));
  }
  batcher_ = std::thread(&Server::batcher_loop, this);
  watchdog_ = std::thread(&Server::watchdog_loop, this);
  if (!params_.checkpoint_path.empty() &&
      params_.checkpoint_every > Duration{} && engine_) {
    checkpointer_ = std::thread(&Server::checkpoint_loop, this);
  }
}

Server::~Server() { shutdown(); }

void Server::finish_now(const std::shared_ptr<SharedState>& state,
                        std::uint64_t id, Status status, Tier tier) {
  Response r;
  r.id = id;
  r.status = status;
  r.tier = tier;
  state->complete(std::move(r));
}

Ticket Server::submit(Request req) {
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = req.id;
  const Tier tier = req.tier;
  auto state = std::make_shared<SharedState>();
  Ticket ticket(state);
  const TimePoint at = now();
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    ++stats_.submitted;
    registry_.push_back({state, req.deadline, id, tier});
  }

  // Admission decision ladder: structural validity first, then accept
  // state, then overload shedding, then the bounded queue.
  const bool empty_solve = !req.is_churn() &&
                           req.instance.graph.num_nodes() == 0;
  if (empty_solve || (req.is_churn() && !engine_) || req.deadline <= at) {
    finish_now(state, id, Status::kInvalid, tier);
    return ticket;
  }
  if (!accepting_.load(std::memory_order_relaxed)) {
    finish_now(state, id, Status::kRejected, tier);
    return ticket;
  }
  bool shed_low = false;
  {
    std::lock_guard<std::mutex> lk(overload_mu_);
    shed_low = overload_.shed_low_priority();
  }
  if (shed_low && req.priority == Priority::kLow) {
    finish_now(state, id, Status::kShed, tier);
    return ticket;
  }
  QueueItem item;
  item.req = std::move(req);
  item.state = state;
  item.seqno = id;
  item.submitted = at;
  if (!queue_.try_push(std::move(item))) {
    finish_now(state, id, Status::kRejected, tier);
    return ticket;
  }
  wake_cv_.notify_one();
  return ticket;
}

void Server::batcher_loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lk(wake_mu_);
      wake_cv_.wait_for(lk, params_.poll, [&] {
        return !running_.load(std::memory_order_relaxed) ||
               queue_.depth() > 0;
      });
    }
    const bool running = running_.load(std::memory_order_relaxed);
    const std::size_t depth = queue_.depth();
    if (!running && depth == 0) break;

    // One controller observation per loop: queue pressure plus the p95
    // completion latency seen so far.
    double p95 = 0.0;
    {
      std::lock_guard<std::mutex> lk(lat_mu_);
      if (latency_.count() >= 8) p95 = latency_.p95();
    }
    std::size_t level = 0;
    bool shed_now = false;
    {
      std::lock_guard<std::mutex> lk(overload_mu_);
      level = overload_.observe(
          static_cast<double>(depth) /
              static_cast<double>(queue_.capacity()),
          p95);
      shed_now = overload_.shed_low_priority();
    }
    if (g_depth_) g_depth_->set(static_cast<double>(depth));
    if (g_level_) g_level_->set(static_cast<double>(level));
    if (shed_now) queue_.shed(Priority::kLow, depth);

    auto batch = queue_.pop_batch(params_.max_batch, now());
    if (!batch.empty()) run_batch(std::move(batch));
  }
}

void Server::run_churn(QueueItem& item) {
  Response r;
  r.id = item.req.id;
  r.tier = item.req.tier;
  {
    std::lock_guard<std::mutex> lk(engine_mu_);
    try {
      for (const ChurnOp& op : item.req.ops) {
        apply_churn_op(*engine_, op);
        // Journal only what was actually applied: a throwing op leaves
        // the journal equal to the engine's real history.
        journal_.push_back(op);
      }
      r.status = Status::kOk;
      r.epoch = engine_->epoch();
      r.cds = engine_->cds();
    } catch (const std::exception& e) {
      r.status = Status::kError;
      r.error = e.what();
      r.epoch = engine_->epoch();
    }
  }
  const TimePoint done = now();
  if (done > item.req.deadline && r.status == Status::kOk) {
    // Structural no-success-past-deadline: the churn *applied* (it is
    // server state), but the response must not claim an in-deadline
    // success.
    r.status = Status::kTimeout;
    r.cds.clear();
  }
  r.latency_seconds = seconds_between(item.submitted, done);
  if (item.state->complete(std::move(r))) {
    std::lock_guard<std::mutex> lk(lat_mu_);
    latency_.add(seconds_between(item.submitted, done));
  }
}

void Server::run_batch(std::vector<QueueItem> batch) {
  // Churn requests mutate shared engine state: apply them serially in
  // admission order (deterministic journal), then batch the solves.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const QueueItem& a, const QueueItem& b) {
                     return a.seqno < b.seqno;
                   });
  std::vector<QueueItem> solves;
  solves.reserve(batch.size());
  for (QueueItem& item : batch) {
    if (item.req.is_churn()) {
      run_churn(item);
    } else {
      solves.push_back(std::move(item));
    }
  }
  if (solves.empty()) return;

  // Snapshot one degradation decision per batch.
  std::vector<Tier> served(solves.size());
  bool strip = false;
  {
    std::lock_guard<std::mutex> lk(overload_mu_);
    for (std::size_t i = 0; i < solves.size(); ++i) {
      served[i] = overload_.cap_tier(solves[i].req.tier);
    }
    strip = overload_.strip_trace();
  }

  std::vector<udg::UdgInstance> corpus;
  corpus.reserve(solves.size());
  for (QueueItem& item : solves) {
    corpus.push_back(std::move(item.req.instance));
  }
  std::vector<std::vector<NodeId>> traces(solves.size());
  const auto solver =
      [&](const udg::UdgInstance& inst) -> par::BatchOutcome {
    const std::size_t i = static_cast<std::size_t>(&inst - corpus.data());
    QueueItem& item = solves[i];
    if (item.state->cancel_requested()) {
      // Cooperative cancellation: skip the solve entirely. The marker
      // error is mapped back to kCancelled at completion.
      par::BatchOutcome o;
      o.failed = true;
      o.error = "cancelled";
      return o;
    }
    if (params_.solve_hook) {
      return params_.solve_hook(item.req, served[i], *item.state);
    }
    const bool want = item.req.want_trace && !strip &&
                      served[i] != Tier::kGreedy;
    return solve_tier(inst, served[i], want ? &traces[i] : nullptr);
  };
  const par::BatchResult result = batch_.solve(corpus, solver);

  const TimePoint done = now();
  for (std::size_t i = 0; i < solves.size(); ++i) {
    QueueItem& item = solves[i];
    const par::BatchOutcome& o = result.outcomes[i];
    Response r;
    r.id = item.req.id;
    r.tier = served[i];
    if (done > item.req.deadline) {
      // The solver finished after the deadline (or never will): the
      // result is discarded, never returned as a success.
      r.status = Status::kTimeout;
    } else if (o.failed) {
      if (o.error == "cancelled") {
        r.status = Status::kCancelled;
      } else {
        r.status = Status::kError;
        r.error = o.error;
      }
    } else {
      r.status = Status::kOk;
      r.cds = o.cds;
      r.dominators = o.dominators;
      r.trace = std::move(traces[i]);
      r.trace_stripped =
          item.req.want_trace && strip && served[i] != Tier::kGreedy;
      r.degraded = served[i] != item.req.tier || r.trace_stripped;
    }
    r.latency_seconds = seconds_between(item.submitted, done);
    if (item.state->complete(std::move(r))) {
      if (h_latency_[static_cast<std::uint8_t>(served[i])]) {
        h_latency_[static_cast<std::uint8_t>(served[i])]->record(
            seconds_between(item.submitted, done));
      }
      std::lock_guard<std::mutex> lk(lat_mu_);
      latency_.add(seconds_between(item.submitted, done));
    }
  }
}

void Server::watchdog_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(params_.poll);
    const TimePoint t = now();
    std::lock_guard<std::mutex> lk(reg_mu_);
    for (Tracked& e : registry_) {
      if (e.deadline <= t && !e.state->done()) {
        // Deadline enforcement: cancel cooperatively and complete the
        // slot. If the solver finishes later its result loses the
        // race and is discarded — a hung solve cannot stall the
        // caller or poison the batch.
        e.state->request_cancel();
        finish_now(e.state, e.id, Status::kTimeout, e.tier);
      }
    }
    retire_done_locked();
  }
}

void Server::checkpoint_loop() {
  auto last = std::chrono::steady_clock::now();
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(params_.poll);
    const auto t = std::chrono::steady_clock::now();
    if (t - last < params_.checkpoint_every) continue;
    last = t;
    try {
      save_checkpoint(params_.checkpoint_path, snapshot_checkpoint());
      if (c_checkpoints_) c_checkpoints_->add();
      std::lock_guard<std::mutex> lk(reg_mu_);
      ++stats_.checkpoints;
    } catch (const std::exception&) {
      // A failed periodic checkpoint must not take the server down;
      // the previous checkpoint file is still intact (atomic rename).
    }
  }
}

CheckpointData Server::snapshot_checkpoint() {
  std::lock_guard<std::mutex> lk(engine_mu_);
  if (!engine_) {
    throw std::logic_error("Server: no churn engine to checkpoint");
  }
  CheckpointData data;
  data.base_points = base_points_;
  data.journal = journal_;
  data.epoch = engine_->epoch();
  data.cds_size = engine_->cds_size();
  data.cds_hash = hash_backbone(engine_->cds());
  return data;
}

void Server::checkpoint_now() {
  if (params_.checkpoint_path.empty()) {
    throw std::logic_error("Server: no checkpoint_path configured");
  }
  save_checkpoint(params_.checkpoint_path, snapshot_checkpoint());
  if (c_checkpoints_) c_checkpoints_->add();
  std::lock_guard<std::mutex> lk(reg_mu_);
  ++stats_.checkpoints;
}

void Server::account(Status s, bool degraded) const {
  switch (s) {
    case Status::kOk: ++stats_.ok; break;
    case Status::kRejected: ++stats_.rejected; break;
    case Status::kShed: ++stats_.shed; break;
    case Status::kTimeout: ++stats_.timeout; break;
    case Status::kCancelled: ++stats_.cancelled; break;
    case Status::kInvalid: ++stats_.invalid; break;
    case Status::kError: ++stats_.errors; break;
  }
  if (degraded) ++stats_.degraded;
  if (c_status_[static_cast<std::uint8_t>(s)]) {
    c_status_[static_cast<std::uint8_t>(s)]->add();
  }
  if (degraded && c_degraded_) c_degraded_->add();
}

void Server::retire_done_locked() const {
  std::erase_if(registry_, [&](const Tracked& e) {
    if (!e.state->done()) return false;
    account(e.state->status(), e.state->response_degraded());
    return true;
  });
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  retire_done_locked();
  ServerStats s = stats_;
  s.inflight = registry_.size();
  return s;
}

std::size_t Server::overload_level() const {
  std::lock_guard<std::mutex> lk(overload_mu_);
  return overload_.level();
}

std::vector<OverloadTransition> Server::overload_transitions() const {
  std::lock_guard<std::mutex> lk(overload_mu_);
  return overload_.transitions();
}

std::size_t Server::journal_size() const {
  std::lock_guard<std::mutex> lk(engine_mu_);
  return journal_.size();
}

void Server::drain() {
  accepting_.store(false, std::memory_order_relaxed);
  while (true) {
    {
      std::lock_guard<std::mutex> lk(reg_mu_);
      retire_done_locked();
      if (queue_.depth() == 0 && registry_.empty()) break;
    }
    std::this_thread::sleep_for(params_.poll);
  }
  shutdown();
}

void Server::shutdown() {
  accepting_.store(false, std::memory_order_relaxed);
  queue_.close();  // queued-but-unstarted work becomes kCancelled
  running_.store(false, std::memory_order_relaxed);
  wake_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  if (watchdog_.joinable()) watchdog_.join();
  if (checkpointer_.joinable()) checkpointer_.join();
  // Terminal sweep: anything still pending (nothing should be, after
  // the joins) is cancelled so no caller blocks forever, then every
  // outcome is accounted exactly once.
  std::lock_guard<std::mutex> lk(reg_mu_);
  for (Tracked& e : registry_) {
    if (!e.state->done()) {
      finish_now(e.state, e.id, Status::kCancelled, e.tier);
    }
  }
  retire_done_locked();
}

}  // namespace mcds::serve
