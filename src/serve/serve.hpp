#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/graph.hpp"
#include "udg/instance.hpp"

/// \file serve.hpp
/// Core vocabulary of the solve server: requests, responses, the quality
/// ladder, and the first-completion-wins ticket a caller blocks on.
///
/// The server's overload story is a *quality ladder*, not a cliff. A
/// request names the tier it wants; under pressure the overload
/// controller caps the tier actually served ((2,2) -> (1,1) -> greedy),
/// strips the phase-decomposition trace, and finally sheds low-priority
/// work at admission. Every response says which tier it was served at,
/// so degradation is observable, never silent.
///
/// Completion discipline: each submitted request owns exactly one
/// SharedState and receives exactly one completion — from the solver,
/// the watchdog (deadline), the shedder, or the drain path, whichever
/// gets there first. complete() is atomic first-writer-wins, which is
/// what lets the watchdog convert a hung solve into a structured
/// timeout without racing the solver's own (late, discarded) result.

namespace mcds::serve {

using graph::NodeId;

/// Steady-clock time, injectable for tests (ServerParams::clock).
using TimePoint = std::chrono::steady_clock::time_point;
using Duration = std::chrono::steady_clock::duration;
using Clock = std::function<TimePoint()>;

/// The quality ladder, best first. Numeric order is degradation order:
/// the overload controller only ever caps the tier downward (max of
/// requested and cap), so a response's tier >= requested tier (as
/// integers) iff the server degraded it.
enum class Tier : std::uint8_t {
  kKm22 = 0,    ///< (2,2)-CDS: 2-connected backbone, 2-fold domination
  kKm11 = 1,    ///< (1,1)-CDS via the same two-phased engine
  kGreedy = 2,  ///< the paper's Section IV greedy
};

/// Shedding order under overload: kLow goes first.
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

/// Terminal status of one request. Exactly one per request.
enum class Status : std::uint8_t {
  kOk = 0,
  kRejected,   ///< refused at admission: queue full (back-pressure)
  kShed,       ///< dropped by the overload controller (priority shed)
  kTimeout,    ///< deadline passed before a result was ready
  kCancelled,  ///< caller cancelled, or server shut down before solve
  kInvalid,    ///< malformed request (empty graph, bad deadline, ...)
  kError,      ///< the solve threw; error carries what()
};

[[nodiscard]] constexpr const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kShed: return "shed";
    case Status::kTimeout: return "timeout";
    case Status::kCancelled: return "cancelled";
    case Status::kInvalid: return "invalid";
    case Status::kError: return "error";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Tier t) noexcept {
  switch (t) {
    case Tier::kKm22: return "km22";
    case Tier::kKm11: return "km11";
    case Tier::kGreedy: return "greedy";
  }
  return "?";
}

/// One churn operation against the server's dynamic engine. Mirrors the
/// dyn::DynamicCds event surface; the checkpoint journal is a sequence
/// of these (replay-on-restore reproduces the engine byte-identically,
/// because the engine itself is deterministic).
struct ChurnOp {
  enum class Kind : std::uint8_t { kInsert = 0, kMove, kErase, kRevive };
  Kind kind = Kind::kInsert;
  NodeId node = 0;  ///< ignored for kInsert (engine assigns the id)
  geom::Vec2 pos{0.0, 0.0};

  bool operator==(const ChurnOp&) const = default;
};

/// One unit of work. A request either carries a solve instance or a
/// churn batch (ops non-empty); never both.
struct Request {
  std::uint64_t id = 0;  ///< assigned by Server::submit
  udg::UdgInstance instance;
  std::vector<ChurnOp> ops;  ///< non-empty = dynamic-churn request
  Tier tier = Tier::kKm11;   ///< requested quality (may be degraded)
  Priority priority = Priority::kNormal;
  TimePoint deadline{};  ///< absolute, on the server's clock
  bool want_trace = true;  ///< full phase decomposition in the response

  [[nodiscard]] bool is_churn() const noexcept { return !ops.empty(); }
};

/// What the caller gets back. Exactly one per submitted request.
struct Response {
  std::uint64_t id = 0;
  Status status = Status::kCancelled;
  Tier tier = Tier::kKm11;  ///< tier actually served (>= requested)
  bool degraded = false;    ///< tier or trace was reduced under overload
  std::vector<NodeId> cds;  ///< the backbone (kOk only), ascending
  std::size_t dominators = 0;
  /// Phase decomposition (connectors then augmenters, pick order) —
  /// the "full trace". Empty when stripped under overload or for
  /// greedy-tier solves.
  std::vector<NodeId> trace;
  bool trace_stripped = false;
  std::size_t epoch = 0;  ///< engine epoch after a churn request
  std::string error;      ///< kError / kInvalid detail
  double latency_seconds = 0.0;  ///< submit -> completion
};

/// First-completion-wins shared slot between caller, solver, watchdog
/// and shedder.
class SharedState {
 public:
  /// Installs \p r as the final response unless one is already set.
  /// Returns true iff this call won.
  bool complete(Response&& r) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (done_) return false;
      resp_ = std::move(r);
      done_ = true;
    }
    cv_.notify_all();
    return true;
  }

  /// Cooperative cancellation flag, polled by long solves (and by the
  /// test fault hooks). Setting it does not complete the request.
  void request_cancel() noexcept { cancelled_.store(true); }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load();
  }

  [[nodiscard]] bool done() const {
    std::lock_guard<std::mutex> lk(mu_);
    return done_;
  }

  /// Terminal status / degradation flag (meaningful once done()).
  [[nodiscard]] Status status() const {
    std::lock_guard<std::mutex> lk(mu_);
    return resp_.status;
  }
  [[nodiscard]] bool response_degraded() const {
    std::lock_guard<std::mutex> lk(mu_);
    return resp_.degraded;
  }

  Response wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return done_; });
    return resp_;
  }

  template <class Rep, class Period>
  [[nodiscard]] bool wait_for(std::chrono::duration<Rep, Period> d) {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, d, [&] { return done_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Response resp_;
  std::atomic<bool> cancelled_{false};
};

/// The caller's handle on one in-flight request.
class Ticket {
 public:
  Ticket() = default;
  explicit Ticket(std::shared_ptr<SharedState> s) : state_(std::move(s)) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_ && state_->done(); }

  /// Blocks until the terminal response (every request gets one —
  /// rejection and shedding complete immediately, the watchdog bounds
  /// the rest — so this cannot block forever on a live server).
  Response wait() { return state_->wait(); }

  template <class Rep, class Period>
  [[nodiscard]] bool wait_for(std::chrono::duration<Rep, Period> d) {
    return state_->wait_for(d);
  }

  /// Requests cooperative cancellation (the watchdog still enforces the
  /// deadline either way).
  void cancel() {
    if (state_) state_->request_cancel();
  }

  [[nodiscard]] const std::shared_ptr<SharedState>& state() const noexcept {
    return state_;
  }

 private:
  std::shared_ptr<SharedState> state_;
};

}  // namespace mcds::serve
