#include "serve/admission_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcds::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("AdmissionQueue: capacity must be >= 1");
  }
}

void AdmissionQueue::finish(QueueItem& item, Status status) {
  Response r;
  r.id = item.req.id;
  r.status = status;
  r.tier = item.req.tier;
  item.state->complete(std::move(r));
}

bool AdmissionQueue::try_push(QueueItem item) {
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_ || items_.size() >= capacity_) return false;
  items_.push_back(std::move(item));
  ++pushed_;
  return true;
}

std::vector<QueueItem> AdmissionQueue::pop_batch(std::size_t max_batch,
                                                 TimePoint now) {
  std::vector<QueueItem> batch;
  std::lock_guard<std::mutex> lk(mu_);
  // Expire first so a stale head never occupies a batch slot.
  for (QueueItem& it : items_) {
    if (it.req.deadline <= now) {
      finish(it, Status::kTimeout);
      ++purged_;
      it.state.reset();  // tombstone
    }
  }
  std::erase_if(items_, [](const QueueItem& it) { return !it.state; });
  if (items_.empty() || max_batch == 0) return batch;
  // EDF: full sort keeps the remainder ordered too — the queue is
  // small (bounded by capacity), so O(n log n) here is noise next to
  // one instance solve.
  std::sort(items_.begin(), items_.end(),
            [](const QueueItem& a, const QueueItem& b) {
              if (a.req.deadline != b.req.deadline) {
                return a.req.deadline < b.req.deadline;
              }
              return a.seqno < b.seqno;
            });
  const std::size_t take = std::min(max_batch, items_.size());
  batch.assign(std::make_move_iterator(items_.begin()),
               std::make_move_iterator(items_.begin() + take));
  items_.erase(items_.begin(), items_.begin() + take);
  return batch;
}

std::size_t AdmissionQueue::purge_expired(TimePoint now) {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (QueueItem& it : items_) {
    if (it.req.deadline <= now) {
      finish(it, Status::kTimeout);
      ++n;
      it.state.reset();
    }
  }
  std::erase_if(items_, [](const QueueItem& it) { return !it.state; });
  purged_ += n;
  return n;
}

std::size_t AdmissionQueue::shed(Priority cutoff, std::size_t max_count) {
  std::lock_guard<std::mutex> lk(mu_);
  if (max_count == 0 || items_.empty()) return 0;
  // Latest deadline first among sheddable items: under overload the
  // furthest-out low-priority work is the cheapest to give up.
  std::vector<std::size_t> sheddable;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].req.priority <= cutoff) sheddable.push_back(i);
  }
  std::sort(sheddable.begin(), sheddable.end(),
            [&](std::size_t a, std::size_t b) {
              if (items_[a].req.deadline != items_[b].req.deadline) {
                return items_[a].req.deadline > items_[b].req.deadline;
              }
              return items_[a].seqno > items_[b].seqno;
            });
  std::size_t n = 0;
  for (std::size_t i : sheddable) {
    if (n >= max_count) break;
    finish(items_[i], Status::kShed);
    items_[i].state.reset();
    ++n;
  }
  std::erase_if(items_, [](const QueueItem& it) { return !it.state; });
  shed_ += n;
  return n;
}

std::size_t AdmissionQueue::close() {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  const std::size_t n = items_.size();
  for (QueueItem& it : items_) finish(it, Status::kCancelled);
  items_.clear();
  return n;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return items_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t AdmissionQueue::pushed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pushed_;
}

std::size_t AdmissionQueue::purged() const {
  std::lock_guard<std::mutex> lk(mu_);
  return purged_;
}

std::size_t AdmissionQueue::shed_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shed_;
}

}  // namespace mcds::serve
