#include "serve/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace mcds::serve {

namespace {

/// Little-endian append helpers. The repo only targets little-endian
/// platforms (x86-64 / aarch64), so memcpy of the native representation
/// is the format.
template <class T>
void put(std::vector<std::byte>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

template <class T>
T get(std::span<const std::byte> in, std::size_t& at) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (at + sizeof(T) > in.size()) {
    throw CheckpointError("checkpoint: truncated payload");
  }
  T v;
  std::memcpy(&v, in.data() + at, sizeof(T));
  at += sizeof(T);
  return v;
}

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint64_t hash_backbone(std::span<const graph::NodeId> cds) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const graph::NodeId v : cds) {
    for (std::size_t b = 0; b < sizeof(v); ++b) {
      h ^= (static_cast<std::uint64_t>(v) >> (8 * b)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint32_t crc32(std::span<const std::byte> bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::byte b : bytes) {
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void save_checkpoint(const std::string& path, const CheckpointData& data) {
  std::vector<std::byte> payload;
  payload.reserve(64 + data.base_points.size() * 16 +
                  data.journal.size() * 21);
  put<std::uint64_t>(payload, data.base_points.size());
  for (const geom::Vec2& p : data.base_points) {
    put<double>(payload, p.x);
    put<double>(payload, p.y);
  }
  put<std::uint64_t>(payload, data.journal.size());
  for (const ChurnOp& op : data.journal) {
    put<std::uint8_t>(payload, static_cast<std::uint8_t>(op.kind));
    put<std::uint32_t>(payload, op.node);
    put<double>(payload, op.pos.x);
    put<double>(payload, op.pos.y);
  }
  put<std::uint64_t>(payload, data.epoch);
  put<std::uint64_t>(payload, data.cds_size);
  put<std::uint64_t>(payload, data.cds_hash);

  std::vector<std::byte> file;
  file.reserve(payload.size() + 24);
  for (const char c : kCheckpointMagic) put<char>(file, c);
  put<std::uint32_t>(file, kCheckpointVersion);
  put<std::uint64_t>(file, payload.size());
  put<std::uint32_t>(file, crc32(payload));
  file.insert(file.end(), payload.begin(), payload.end());

  // tmp + flush + atomic rename: a crash at any point leaves either the
  // old checkpoint or none, never a torn one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("save_checkpoint: cannot open " + tmp);
    }
    os.write(reinterpret_cast<const char*>(file.data()),
             static_cast<std::streamsize>(file.size()));
    os.flush();
    if (!os) {
      throw std::runtime_error("save_checkpoint: write failed on " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("save_checkpoint: rename to " + path +
                             " failed");
  }
}

CheckpointData load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw CheckpointError("checkpoint: cannot open " + path);
  const std::string raw((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> file(raw.size());
  std::memcpy(file.data(), raw.data(), raw.size());
  std::size_t at = 0;
  const std::span<const std::byte> bytes(file);
  if (bytes.size() < sizeof(kCheckpointMagic) + 4 + 8 + 4) {
    throw CheckpointError("checkpoint: file shorter than header");
  }
  for (const char c : kCheckpointMagic) {
    if (get<char>(bytes, at) != c) {
      throw CheckpointError("checkpoint: bad magic (not a checkpoint?)");
    }
  }
  const auto version = get<std::uint32_t>(bytes, at);
  if (version != kCheckpointVersion) {
    throw CheckpointError("checkpoint: version " + std::to_string(version) +
                          " unsupported (want " +
                          std::to_string(kCheckpointVersion) + ")");
  }
  const auto size = get<std::uint64_t>(bytes, at);
  const auto crc = get<std::uint32_t>(bytes, at);
  if (bytes.size() - at != size) {
    throw CheckpointError("checkpoint: truncated (payload " +
                          std::to_string(bytes.size() - at) + " of " +
                          std::to_string(size) + " bytes)");
  }
  const std::span<const std::byte> payload = bytes.subspan(at);
  if (crc32(payload) != crc) {
    throw CheckpointError("checkpoint: CRC mismatch (corrupted file)");
  }

  CheckpointData data;
  std::size_t p = 0;
  const auto n_points = get<std::uint64_t>(payload, p);
  if (n_points > payload.size() / 16) {
    throw CheckpointError("checkpoint: implausible point count");
  }
  data.base_points.reserve(n_points);
  for (std::uint64_t i = 0; i < n_points; ++i) {
    const double x = get<double>(payload, p);
    const double y = get<double>(payload, p);
    data.base_points.push_back({x, y});
  }
  const auto n_ops = get<std::uint64_t>(payload, p);
  if (n_ops > payload.size() / 21) {
    throw CheckpointError("checkpoint: implausible journal length");
  }
  data.journal.reserve(n_ops);
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    ChurnOp op;
    const auto kind = get<std::uint8_t>(payload, p);
    if (kind > 3) throw CheckpointError("checkpoint: bad op kind");
    op.kind = static_cast<ChurnOp::Kind>(kind);
    op.node = get<std::uint32_t>(payload, p);
    op.pos.x = get<double>(payload, p);
    op.pos.y = get<double>(payload, p);
    data.journal.push_back(op);
  }
  data.epoch = get<std::uint64_t>(payload, p);
  data.cds_size = get<std::uint64_t>(payload, p);
  data.cds_hash = get<std::uint64_t>(payload, p);
  if (p != payload.size()) {
    throw CheckpointError("checkpoint: trailing bytes after payload");
  }
  return data;
}

dyn::EventReport apply_churn_op(dyn::DynamicCds& engine, const ChurnOp& op) {
  switch (op.kind) {
    case ChurnOp::Kind::kInsert: {
      dyn::EventReport rep;
      engine.insert(op.pos, &rep);
      return rep;
    }
    case ChurnOp::Kind::kMove:
      return engine.move(op.node, op.pos);
    case ChurnOp::Kind::kErase:
      return engine.erase(op.node);
    case ChurnOp::Kind::kRevive:
      return engine.revive(op.node, op.pos);
  }
  throw CheckpointError("apply_churn_op: bad op kind");
}

std::unique_ptr<dyn::DynamicCds> restore_engine(const CheckpointData& data,
                                                const dyn::DynParams& params,
                                                const obs::Obs& obs) {
  auto engine =
      std::make_unique<dyn::DynamicCds>(data.base_points, params, obs);
  for (const ChurnOp& op : data.journal) {
    try {
      apply_churn_op(*engine, op);
    } catch (const std::exception& e) {
      throw CheckpointError(std::string("checkpoint: journal replay "
                                        "failed: ") +
                            e.what());
    }
  }
  // Differential verify: the replayed engine must reproduce the exact
  // state fingerprint recorded at save time. The engine is
  // deterministic, so any divergence means corruption (or an engine
  // behavior change, which a restore must also refuse to paper over).
  if (engine->epoch() != data.epoch) {
    throw CheckpointError("checkpoint: replay diverged (epoch " +
                          std::to_string(engine->epoch()) + " != saved " +
                          std::to_string(data.epoch) + ")");
  }
  if (engine->cds_size() != data.cds_size ||
      hash_backbone(engine->cds()) != data.cds_hash) {
    throw CheckpointError("checkpoint: replay diverged (backbone "
                          "fingerprint mismatch)");
  }
  return engine;
}

}  // namespace mcds::serve
