#pragma once

#include <cstddef>
#include <vector>

#include "serve/serve.hpp"

/// \file overload.hpp
/// The graceful-degradation state machine. The controller watches two
/// pressure signals — queue depth as a fraction of capacity, and the
/// observed p95 service latency — and maps them onto a small ladder of
/// overload levels:
///
///   level 0: full quality (requested tier, full trace)
///   level 1: tier capped at (1,1) — the cheap half of the ladder
///   level 2: tier capped at greedy, phase trace stripped
///   level 3: additionally shed Priority::kLow work
///
/// Transitions are hysteresis-guarded: escalation needs `dwell_up`
/// consecutive over-threshold observations, de-escalation `dwell_down`
/// consecutive under-threshold ones, and the exit thresholds sit well
/// below the entry thresholds. Both guards exist for the same reason —
/// a controller that flaps converts load noise into quality noise.
/// Every transition moves exactly one level (monotone steps, the chaos
/// invariant), and the full transition history is kept for audit.

namespace mcds::serve {

struct OverloadParams {
  /// Escalate when depth/capacity > enter_depth OR p95 > enter_p95_s.
  double enter_depth = 0.75;
  double enter_p95_s = 0.5;
  /// De-escalate only when depth/capacity < exit_depth AND
  /// p95 < exit_p95_s (strictly below entry: the hysteresis band).
  double exit_depth = 0.35;
  double exit_p95_s = 0.25;
  /// Consecutive observations required before a transition.
  std::size_t dwell_up = 2;
  std::size_t dwell_down = 4;
  std::size_t max_level = 3;

  /// Throws std::invalid_argument unless exit < enter on both signals,
  /// dwells >= 1 and max_level <= 3.
  void validate() const;
};

/// One recorded level change.
struct OverloadTransition {
  std::size_t observation = 0;  ///< observe() call index
  std::size_t from = 0;
  std::size_t to = 0;
};

class OverloadController {
 public:
  explicit OverloadController(OverloadParams params = {});

  /// Feeds one pressure sample; returns the (possibly new) level.
  /// Single-writer: call from the batcher loop only.
  std::size_t observe(double depth_fraction, double p95_seconds);

  [[nodiscard]] std::size_t level() const noexcept { return level_; }

  /// The quality actually served for a request asking \p requested.
  [[nodiscard]] Tier cap_tier(Tier requested) const noexcept {
    Tier cap = Tier::kKm22;
    if (level_ == 1) cap = Tier::kKm11;
    if (level_ >= 2) cap = Tier::kGreedy;
    return requested < cap ? cap : requested;
  }
  /// Drop the phase-decomposition trace from responses?
  [[nodiscard]] bool strip_trace() const noexcept { return level_ >= 2; }
  /// Shed Priority::kLow work?
  [[nodiscard]] bool shed_low_priority() const noexcept {
    return level_ >= 3;
  }

  [[nodiscard]] const std::vector<OverloadTransition>& transitions()
      const noexcept {
    return transitions_;
  }
  [[nodiscard]] std::size_t observations() const noexcept { return obs_n_; }

 private:
  OverloadParams params_;
  std::size_t level_ = 0;
  std::size_t over_streak_ = 0;
  std::size_t under_streak_ = 0;
  std::size_t obs_n_ = 0;
  std::vector<OverloadTransition> transitions_;
};

}  // namespace mcds::serve
