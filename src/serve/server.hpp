#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dyn/dynamic_cds.hpp"
#include "obs/obs.hpp"
#include "par/batch_solver.hpp"
#include "par/thread_pool.hpp"
#include "serve/admission_queue.hpp"
#include "serve/checkpoint.hpp"
#include "serve/overload.hpp"
#include "serve/serve.hpp"
#include "sim/stats.hpp"

/// \file server.hpp
/// The overload-safe solve server. One Server owns:
///
///   admission   — submit() validates, sheds (under level-3 overload),
///                 and try_pushes into the bounded AdmissionQueue;
///                 a full queue is back-pressure (kRejected), never
///                 unbounded buffering.
///   batcher     — one thread draining the queue in EDF order into
///                 par::BatchSolver batches; the overload controller is
///                 observed once per loop from queue depth and p95.
///   watchdog    — one thread converting any in-flight request whose
///                 deadline has passed into a structured kTimeout
///                 (first-completion-wins against the solver) and
///                 raising its cooperative cancel flag. This is what
///                 makes a hung or slow solve a per-request error
///                 instead of a server-wide stall.
///   churn state — an optional dyn::DynamicCds engine serving churn
///                 requests, with an event-sourced journal checkpointed
///                 crash-safely by a periodic checkpointer thread.
///
/// Completion invariants (the chaos suite enforces these):
///   * every submitted request receives exactly one terminal response
///     (zero leaked after drain);
///   * no response is kOk when the server's clock is past the request's
///     deadline at completion time — enforced structurally: the
///     completion path re-checks the clock and downgrades to kTimeout;
///   * overload level transitions are ±1 steps (see OverloadController).

namespace mcds::serve {

struct ServerParams {
  std::size_t queue_capacity = 64;
  std::size_t max_batch = 8;
  std::size_t threads = 0;  ///< solver pool size (0 = auto)
  /// Batcher poll / watchdog scan period (real time).
  Duration poll = std::chrono::milliseconds(1);
  OverloadParams overload;
  /// Virtualized time source for deadline logic; null = steady_clock.
  Clock clock;

  /// Initial population of the dynamic engine; empty = churn requests
  /// are kInvalid.
  std::vector<geom::Vec2> initial_points;
  dyn::DynParams dyn;

  /// Crash-safe checkpointing of the churn engine: every
  /// checkpoint_every (real time) to checkpoint_path. Disabled when
  /// the path is empty or the period is zero.
  std::string checkpoint_path;
  Duration checkpoint_every{};

  /// Test seam: replaces the per-request tier solve when set (fault
  /// injection, latency shaping). Receives the request, the tier the
  /// overload controller chose, and the request's shared state (for
  /// cooperative-cancel polling). May throw — the containment path
  /// turns that into kError.
  std::function<par::BatchOutcome(const Request&, Tier, SharedState&)>
      solve_hook;
};

/// Monotone totals, exact: counted once per request at the single
/// accounting point (registry retirement).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t timeout = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t invalid = 0;
  std::uint64_t errors = 0;
  std::uint64_t degraded = 0;  ///< kOk responses served below request
  std::uint64_t checkpoints = 0;
  std::size_t inflight = 0;  ///< submitted, not yet terminal

  /// Requests whose outcome is unaccounted for. Zero after drain() —
  /// the soak and chaos suites assert this.
  [[nodiscard]] std::uint64_t leaked() const noexcept {
    return submitted - ok - rejected - shed - timeout - cancelled -
           invalid - errors - inflight;
  }
};

class Server {
 public:
  /// Starts the batcher/watchdog (and checkpointer, if configured)
  /// threads. \p obs (null sinks by default) receives "serve.*"
  /// counters, the queue-depth gauge and per-tier latency histograms.
  explicit Server(ServerParams params, const obs::Obs& obs = {});

  /// shutdown()s (drain-less: queued work is cancelled, not solved).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits one request. Always returns a valid Ticket; a request the
  /// server will not run (invalid, shed, rejected, draining) is
  /// completed immediately with the corresponding status.
  Ticket submit(Request req);

  /// Stops admitting, then blocks until every in-flight request has a
  /// terminal response (deadlines bound this) and stops the threads.
  void drain();

  /// Stops admitting, cancels all queued work, joins the threads.
  void shutdown();

  /// Forces a checkpoint now (also the SIGTERM path's last act).
  /// Throws if no engine or no checkpoint_path is configured.
  void checkpoint_now();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] std::size_t overload_level() const;
  [[nodiscard]] std::vector<OverloadTransition> overload_transitions() const;
  [[nodiscard]] bool accepting() const noexcept {
    return accepting_.load(std::memory_order_relaxed);
  }

  /// The churn engine (nullptr when initial_points was empty). The
  /// engine is only mutated by the batcher thread; read epoch()/cds()
  /// between requests or after drain for stable values.
  [[nodiscard]] const dyn::DynamicCds* engine() const {
    return engine_.get();
  }
  [[nodiscard]] std::size_t journal_size() const;

 private:
  struct Tracked {
    std::shared_ptr<SharedState> state;
    TimePoint deadline;
    std::uint64_t id = 0;
    Tier tier = Tier::kKm11;
  };

  [[nodiscard]] TimePoint now() const { return params_.clock(); }
  void finish_now(const std::shared_ptr<SharedState>& state,
                  std::uint64_t id, Status status, Tier tier);
  void batcher_loop();
  void watchdog_loop();
  void checkpoint_loop();
  void run_batch(std::vector<QueueItem> batch);
  void run_churn(QueueItem& item);
  void retire_done_locked() const;
  [[nodiscard]] CheckpointData snapshot_checkpoint();
  void account(Status s, bool degraded) const;

  ServerParams params_;
  obs::Obs obs_;
  AdmissionQueue queue_;
  par::ThreadPool pool_;
  par::BatchSolver batch_;
  OverloadController overload_;
  mutable std::mutex overload_mu_;  ///< controller written by batcher only

  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> next_id_{1};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  /// Every live request, registered at submit; the watchdog scans it
  /// for deadline enforcement and retires terminal entries into
  /// stats_ (the single accounting point).
  mutable std::mutex reg_mu_;
  mutable std::vector<Tracked> registry_;  ///< stats() retires lazily
  mutable ServerStats stats_;

  /// Completion-latency feed for the overload controller's p95 signal.
  mutable std::mutex lat_mu_;
  sim::Accumulator latency_;

  /// Churn engine + journal; batcher-thread writes, checkpointer reads
  /// under the same mutex.
  mutable std::mutex engine_mu_;
  std::unique_ptr<dyn::DynamicCds> engine_;
  std::vector<geom::Vec2> base_points_;
  std::vector<ChurnOp> journal_;

  std::thread batcher_;
  std::thread watchdog_;
  std::thread checkpointer_;

  obs::Counter* c_status_[7] = {};  ///< indexed by Status
  obs::Counter* c_degraded_ = nullptr;
  obs::Counter* c_checkpoints_ = nullptr;
  obs::Gauge* g_depth_ = nullptr;
  obs::Gauge* g_level_ = nullptr;
  obs::Histogram* h_latency_[3] = {};  ///< indexed by served Tier
};

/// The real tier solver (used when no solve_hook is set): (2,2)- and
/// (1,1)-CDS via core::kmcds, greedy via par::solve_greedy. \p trace
/// (when non-null and the tier has phases) receives the connector /
/// augmenter pick order — the "full trace" the overload controller
/// strips at level >= 2.
[[nodiscard]] par::BatchOutcome solve_tier(const udg::UdgInstance& inst,
                                           Tier tier,
                                           std::vector<NodeId>* trace);

}  // namespace mcds::serve
