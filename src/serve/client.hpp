#pragma once

#include <algorithm>
#include <functional>

#include "serve/server.hpp"
#include "sim/rng.hpp"

/// \file client.hpp
/// Client-side retry for back-pressure outcomes. A kRejected (queue
/// full) or kShed (overload) response is the server telling the caller
/// "not now" — the correct client reaction is to back off and retry,
/// with *jitter*, so a thundering herd of rejected clients does not
/// re-synchronize into the exact burst that overloaded the server in
/// the first place. Full-jitter exponential backoff: the k-th retry
/// sleeps uniform(0, min(cap, base * 2^k)).
///
/// Every other status (kOk, kTimeout, kError, kInvalid, kCancelled) is
/// terminal and returned as-is: retrying a timed-out request against
/// the same deadline cannot succeed, and retrying an invalid one is
/// futile.

namespace mcds::serve {

struct RetryPolicy {
  std::size_t max_attempts = 5;  ///< total attempts (first + retries)
  Duration base = std::chrono::milliseconds(2);
  Duration cap = std::chrono::milliseconds(100);
  std::uint64_t seed = 1;  ///< jitter stream (deterministic per client)
};

/// Sleep seam so tests retry without real waiting.
using SleepFn = std::function<void(Duration)>;

/// Submits \p req (re-stamping the deadline via \p make_deadline on
/// every attempt — a retried request gets a fresh deadline, not the
/// stale one that already expired while backing off), retrying on
/// kRejected/kShed per \p policy. Returns the last response.
inline Response submit_with_retry(
    Server& server, Request req, const RetryPolicy& policy,
    const std::function<TimePoint()>& clock,
    const std::function<Duration()>& deadline_budget,
    const SleepFn& sleep) {
  sim::Rng rng(policy.seed);
  Response last;
  for (std::size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    Request r = req;
    r.deadline = clock() + deadline_budget();
    last = server.submit(std::move(r)).wait();
    if (last.status != Status::kRejected && last.status != Status::kShed) {
      return last;
    }
    if (attempt + 1 == policy.max_attempts) break;
    // Full jitter: uniform over [0, min(cap, base << attempt)].
    const auto shift = std::min<std::size_t>(attempt, 16);
    const Duration ceiling = std::min(policy.cap, policy.base * (1u << shift));
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(ceiling)
            .count();
    const Duration wait = std::chrono::nanoseconds(
        ns > 0 ? static_cast<std::int64_t>(
                     rng.uniform_int(static_cast<std::uint64_t>(ns) + 1))
               : 0);
    sleep(wait);
  }
  return last;
}

}  // namespace mcds::serve
