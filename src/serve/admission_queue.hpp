#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/serve.hpp"

/// \file admission_queue.hpp
/// The bounded, deadline-aware request queue between admission and the
/// batcher. Three jobs:
///
///   bounded    — try_push refuses when full (the caller turns that into
///                a kRejected response: back-pressure, not buffering).
///   EDF        — pop_batch hands out the earliest-deadline requests
///                first (FIFO tiebreak by admission order), so deadline
///                pressure, not arrival order, decides who runs next.
///   expiry     — purge_expired cancels work whose deadline already
///                passed *before* it reaches a worker, completing it
///                kTimeout. A queue under overload spends workers only
///                on requests that can still make it.
///
/// The queue is passive (mutex-protected, no internal threads) and uses
/// an injected `now` for every deadline comparison, so tests drive it
/// with a fake clock deterministically.

namespace mcds::serve {

/// One queued unit: the request plus its completion slot.
struct QueueItem {
  Request req;
  std::shared_ptr<SharedState> state;
  std::uint64_t seqno = 0;   ///< admission order, the EDF tiebreak
  TimePoint submitted{};     ///< admission time, for latency accounting
};

class AdmissionQueue {
 public:
  /// \p capacity is the back-pressure bound; must be >= 1.
  explicit AdmissionQueue(std::size_t capacity);

  /// Admits \p item unless the queue is full or closed. Returns true
  /// iff admitted; on false the caller owns the completion.
  [[nodiscard]] bool try_push(QueueItem item);

  /// Removes and returns up to \p max_batch items in EDF order
  /// (deadline, then seqno). Items already past their deadline at
  /// \p now are completed kTimeout instead of returned (counted via
  /// purged()). Non-blocking; returns empty when the queue is empty.
  [[nodiscard]] std::vector<QueueItem> pop_batch(std::size_t max_batch,
                                                 TimePoint now);

  /// Completes every expired item kTimeout without popping live work.
  /// Returns how many were purged.
  std::size_t purge_expired(TimePoint now);

  /// Sheds up to \p max_count queued items of priority <= \p cutoff,
  /// latest-deadline first (the least likely to matter), completing
  /// them kShed. Returns how many were shed.
  std::size_t shed(Priority cutoff, std::size_t max_count);

  /// Closes the queue: subsequent try_push fails; queued items are
  /// completed kCancelled and dropped. Returns how many were cancelled.
  std::size_t close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const;

  /// Lifetime counters (monotone).
  [[nodiscard]] std::size_t pushed() const;
  [[nodiscard]] std::size_t purged() const;
  [[nodiscard]] std::size_t shed_total() const;

 private:
  /// Completes \p item with \p status (latency left 0: never started).
  static void finish(QueueItem& item, Status status);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<QueueItem> items_;
  bool closed_ = false;
  std::size_t pushed_ = 0;
  std::size_t purged_ = 0;
  std::size_t shed_ = 0;
};

}  // namespace mcds::serve
