#include "baselines/guha_khuller.hpp"

#include <stdexcept>

#include "graph/traversal.hpp"

namespace mcds::baselines {

namespace {
enum class Color : unsigned char { kWhite, kGray, kBlack };
}  // namespace

std::vector<NodeId> guha_khuller_cds(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) throw std::invalid_argument("guha_khuller_cds: empty graph");
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("guha_khuller_cds: graph must be connected");
  }
  if (n == 1) return {0};
  const graph::FrozenGraph fg(g);

  std::vector<Color> color(n, Color::kWhite);
  std::size_t white = n;

  const auto white_degree = [&](NodeId u) {
    std::size_t count = 0;
    for (const NodeId v : fg.neighbors(u)) {
      if (color[v] == Color::kWhite) ++count;
    }
    return count;
  };
  const auto blacken = [&](NodeId u) {
    if (color[u] == Color::kWhite) --white;
    color[u] = Color::kBlack;
    for (const NodeId v : fg.neighbors(u)) {
      if (color[v] == Color::kWhite) {
        color[v] = Color::kGray;
        --white;
      }
    }
  };

  // Seed: the maximum-degree node.
  NodeId seed = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (fg.degree(v) > fg.degree(seed)) seed = v;
  }
  blacken(seed);

  while (white > 0) {
    // Best single gray node, and best gray->white pair (the pair's yield
    // is averaged per node added, as in the original scan rule).
    NodeId best_single = graph::kNoNode;
    std::size_t best_single_gain = 0;
    NodeId best_pair_u = graph::kNoNode, best_pair_v = graph::kNoNode;
    std::size_t best_pair_gain = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (color[u] != Color::kGray) continue;
      const std::size_t gain_u = white_degree(u);
      if (gain_u > best_single_gain) {
        best_single_gain = gain_u;
        best_single = u;
      }
      for (const NodeId v : fg.neighbors(u)) {
        if (color[v] != Color::kWhite) continue;
        // Pair yield: u whitens gain_u (v among them), then v whitens its
        // own white neighbors (v no longer white after u).
        const std::size_t gain_v = white_degree(v);
        const std::size_t pair_gain = gain_u + gain_v - 1;
        if (pair_gain > best_pair_gain) {
          best_pair_gain = pair_gain;
          best_pair_u = u;
          best_pair_v = v;
        }
      }
    }
    // Compare per-node yield; prefer the single when not worse.
    if (best_single != graph::kNoNode &&
        2 * best_single_gain >= best_pair_gain) {
      blacken(best_single);
    } else if (best_pair_u != graph::kNoNode) {
      blacken(best_pair_u);
      blacken(best_pair_v);
    } else {
      throw std::logic_error(
          "guha_khuller_cds: no gray node adjacent to white nodes");
    }
  }

  std::vector<NodeId> cds;
  for (NodeId v = 0; v < n; ++v) {
    if (color[v] == Color::kBlack) cds.push_back(v);
  }
  return cds;
}

}  // namespace mcds::baselines
