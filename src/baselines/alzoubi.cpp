#include "baselines/alzoubi.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "core/mis.hpp"
#include "graph/traversal.hpp"

namespace mcds::baselines {

std::vector<NodeId> alzoubi_cds(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) throw std::invalid_argument("alzoubi_cds: empty graph");
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("alzoubi_cds: graph must be connected");
  }
  const auto mis = core::lowest_id_mis(g);
  const graph::FrozenGraph fg(g);
  std::vector<bool> in_cds(n, false);
  for (const NodeId u : mis.mis) in_cds[u] = true;

  // For each dominator u: depth-3 BFS; for every dominator w reached with
  // id(w) < id(u), add the interior nodes of the BFS path u -> w.
  std::vector<NodeId> depth(n), parent(n);
  for (const NodeId u : mis.mis) {
    std::fill(depth.begin(), depth.end(), graph::kNoNode);
    std::fill(parent.begin(), parent.end(), graph::kNoNode);
    std::queue<NodeId> q;
    q.push(u);
    depth[u] = 0;
    while (!q.empty()) {
      const NodeId x = q.front();
      q.pop();
      if (depth[x] >= 3) continue;
      for (const NodeId y : fg.neighbors(x)) {
        if (depth[y] != graph::kNoNode) continue;
        depth[y] = depth[x] + 1;
        parent[y] = x;
        q.push(y);
        if (mis.in_mis[y] && y < u) {
          // Interior nodes of the path u -> y become connectors.
          for (NodeId t = parent[y]; t != u && t != graph::kNoNode;
               t = parent[t]) {
            in_cds[t] = true;
          }
        }
      }
    }
  }

  std::vector<NodeId> cds;
  for (NodeId v = 0; v < n; ++v) {
    if (in_cds[v]) cds.push_back(v);
  }
  return cds;
}

}  // namespace mcds::baselines
