#include "baselines/stojmenovic.hpp"

#include <stdexcept>

#include "baselines/connect_util.hpp"
#include "core/mis.hpp"
#include "graph/traversal.hpp"

namespace mcds::baselines {

std::vector<NodeId> stojmenovic_cds(const Graph& g) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("stojmenovic_cds: empty graph");
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("stojmenovic_cds: graph must be connected");
  }
  const auto mis = core::lowest_id_mis(g);
  return connected_closure(g, mis.mis);
}

}  // namespace mcds::baselines
