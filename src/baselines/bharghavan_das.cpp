#include "baselines/bharghavan_das.hpp"

#include <stdexcept>

#include "baselines/connect_util.hpp"
#include "graph/traversal.hpp"

namespace mcds::baselines {

std::vector<NodeId> greedy_dominating_set(const Graph& g) {
  const std::size_t n = g.num_nodes();
  const graph::FrozenGraph fg(g);
  std::vector<bool> covered(n, false);
  std::size_t uncovered = n;
  std::vector<NodeId> ds;
  while (uncovered > 0) {
    NodeId best = graph::kNoNode;
    std::size_t best_gain = 0;
    for (NodeId v = 0; v < n; ++v) {
      std::size_t gain = covered[v] ? 0 : 1;
      for (const NodeId w : fg.neighbors(v)) {
        if (!covered[w]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    // Every uncovered node covers at least itself, so best is set.
    ds.push_back(best);
    if (!covered[best]) {
      covered[best] = true;
      --uncovered;
    }
    for (const NodeId w : fg.neighbors(best)) {
      if (!covered[w]) {
        covered[w] = true;
        --uncovered;
      }
    }
  }
  return ds;
}

std::vector<NodeId> bharghavan_das_cds(const Graph& g) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("bharghavan_das_cds: empty graph");
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("bharghavan_das_cds: graph must be connected");
  }
  return connected_closure(g, greedy_dominating_set(g));
}

}  // namespace mcds::baselines
