#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file alzoubi.hpp
/// Baseline in the style of Alzoubi–Wan–Frieder [1] (message-optimal
/// construction): the dominators are an id-elected MIS; every dominator
/// then connects to each dominator within three hops that has a smaller
/// id, via the interior nodes of a shortest path. The paper notes this
/// trades CDS size (a large constant ratio, < 192) for linear time and
/// messages.

namespace mcds::baselines {

using graph::Graph;
using graph::NodeId;

/// Runs the [1]-style construction. Requires a connected graph with
/// >= 1 node; returns the CDS in ascending node id.
[[nodiscard]] std::vector<NodeId> alzoubi_cds(const Graph& g);

}  // namespace mcds::baselines
