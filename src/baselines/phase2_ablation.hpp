#pragma once

#include <cstdint>
#include <vector>

#include "core/mis.hpp"

/// \file phase2_ablation.hpp
/// Phase-2 ablation harness: with phase 1 fixed to the BFS first-fit MIS
/// of [10], swap in different connector-selection rules and compare the
/// resulting CDS sizes. This isolates exactly the design choice Section
/// IV changes relative to Section III.

namespace mcds::baselines {

using core::Graph;
using core::NodeId;

/// The connector-selection rule to apply on top of the fixed MIS.
enum class ConnectorPolicy {
  kTreeParent,        ///< Section III ([10]): s + BFS-tree parents
  kMaxGain,           ///< Section IV (the paper's new rule)
  kFirstPositiveGain, ///< any positive-gain node (smallest id) — greedy
                      ///< without the "maximum" part
  kRandomPositiveGain,///< uniformly random positive-gain node
  kShortestPath,      ///< Steiner-style nearest-component merging ([8])
};

/// Printable policy name.
[[nodiscard]] const char* to_string(ConnectorPolicy policy) noexcept;

/// Result of a policy run.
struct Phase2Result {
  core::MisResult phase1;
  std::vector<NodeId> connectors;
  std::vector<NodeId> cds;  ///< ascending node id
};

/// Runs phase 1 (BFS first-fit MIS from \p root) followed by phase 2
/// under \p policy. \p seed only matters for kRandomPositiveGain.
/// Preconditions: g connected, >= 1 node.
[[nodiscard]] Phase2Result cds_with_policy(const Graph& g,
                                           ConnectorPolicy policy,
                                           NodeId root = 0,
                                           std::uint64_t seed = 1);

}  // namespace mcds::baselines
