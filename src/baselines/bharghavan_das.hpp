#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file bharghavan_das.hpp
/// The two-phased baseline of Bharghavan & Das [2]: phase 1 selects a
/// dominating set with Chvátal's greedy Set Cover heuristic [5] (each
/// node's set is its closed neighborhood); phase 2 interconnects the
/// dominators. The paper notes its ratio is only logarithmic.

namespace mcds::baselines {

using graph::Graph;
using graph::NodeId;

/// Chvátal greedy dominating set: repeatedly pick the node covering the
/// most uncovered nodes (ties toward smaller id). Works on any graph.
[[nodiscard]] std::vector<NodeId> greedy_dominating_set(const Graph& g);

/// Full Bharghavan–Das style CDS: greedy dominating set + shortest-path
/// interconnection. Requires a connected graph with >= 1 node.
[[nodiscard]] std::vector<NodeId> bharghavan_das_cds(const Graph& g);

}  // namespace mcds::baselines
