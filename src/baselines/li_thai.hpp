#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file li_thai.hpp
/// Baseline in the style of Li–Thai–Wang–Yi–Wan–Du [8] (ST-MSN): phase 1
/// is the BFS first-fit MIS; phase 2 builds a Steiner tree over the
/// dominators with a greedy nearest-component merge. The paper derives a
/// 5.8 + ln 5 ratio for [8] from its refined packing bound.

namespace mcds::baselines {

using graph::Graph;
using graph::NodeId;

/// Runs the [8]-style construction from \p root. Requires a connected
/// graph with >= 1 node; returns the CDS in ascending node id.
[[nodiscard]] std::vector<NodeId> li_thai_cds(const Graph& g, NodeId root = 0);

}  // namespace mcds::baselines
