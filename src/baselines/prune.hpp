#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file prune.hpp
/// Post-pruning pass applicable to any CDS: repeatedly drop a node whose
/// removal keeps the set a CDS. Used by the ablation experiments to
/// quantify how much slack each construction leaves behind.

namespace mcds::baselines {

using graph::Graph;
using graph::NodeId;

/// Returns a minimal (inclusion-wise) CDS contained in \p cds.
/// Candidates are tried in descending node id. Preconditions: g
/// connected, cds a valid CDS of g.
[[nodiscard]] std::vector<NodeId> prune_cds(const Graph& g,
                                            std::vector<NodeId> cds);

}  // namespace mcds::baselines
