#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file stojmenovic.hpp
/// Baseline in the style of Stojmenovic–Seddigh–Zunic [9]: the
/// dominating set is an *arbitrary* MIS — here the id-order first-fit
/// MIS, mirroring the id-based election of [9] — interconnected along
/// shortest paths. Without the BFS-tree structure of [10] the selection
/// has no 2-hop separation ordering, and the paper notes the ratio of
/// [9] is only linear.

namespace mcds::baselines {

using graph::Graph;
using graph::NodeId;

/// Runs the [9]-style construction. Requires a connected graph with
/// >= 1 node; returns the CDS in ascending node id.
[[nodiscard]] std::vector<NodeId> stojmenovic_cds(const Graph& g);

}  // namespace mcds::baselines
