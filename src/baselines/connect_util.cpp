#include "baselines/connect_util.hpp"

#include "graph/steiner.hpp"

namespace mcds::baselines {

std::vector<NodeId> connect_via_shortest_paths(
    const Graph& g, const std::vector<NodeId>& seeds) {
  return graph::shortest_path_augment(g, seeds);
}

std::vector<NodeId> connected_closure(const Graph& g,
                                      const std::vector<NodeId>& seeds) {
  const auto connectors = connect_via_shortest_paths(g, seeds);
  std::vector<bool> in(g.num_nodes(), false);
  for (const NodeId v : seeds) in[v] = true;
  for (const NodeId v : connectors) in[v] = true;
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in[v]) out.push_back(v);
  }
  return out;
}

}  // namespace mcds::baselines
