#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file wu_li.hpp
/// The marking-process CDS of Wu & Li (1999) with pruning Rules 1 and 2 —
/// a widely used pruning-based comparator (not one of the paper's
/// two-phased family, included to situate the two-phased results).
///
/// Marking: v is marked iff it has two neighbors that are not adjacent
/// to each other. Rule 1: unmark v if some marked u with higher id has
/// N[v] ⊆ N[u]. Rule 2: unmark v if two adjacent marked neighbors u, w
/// with higher ids satisfy N(v) ⊆ N(u) ∪ N(w).

namespace mcds::baselines {

using graph::Graph;
using graph::NodeId;

/// Runs marking + Rule 1 + Rule 2. Requires a connected graph with >= 1
/// node. For graphs where nothing is marked (complete graphs and single
/// nodes) returns the highest-id node, which is then a valid CDS.
[[nodiscard]] std::vector<NodeId> wu_li_cds(const Graph& g);

}  // namespace mcds::baselines
