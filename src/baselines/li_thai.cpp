#include "baselines/li_thai.hpp"

#include <stdexcept>

#include "baselines/connect_util.hpp"
#include "core/mis.hpp"
#include "graph/traversal.hpp"

namespace mcds::baselines {

std::vector<NodeId> li_thai_cds(const Graph& g, NodeId root) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("li_thai_cds: empty graph");
  }
  const auto mis = core::bfs_first_fit_mis(g, root);
  return connected_closure(g, mis.mis);
}

}  // namespace mcds::baselines
