#include "baselines/wu_li.hpp"

#include <stdexcept>

#include "graph/traversal.hpp"

namespace mcds::baselines {

namespace {

// N[v] ⊆ N[u], assuming v and u are adjacent (so v ∈ N[u]): every
// neighbor of v other than u must also be adjacent to u.
bool closed_subset(const graph::FrozenGraph& g, NodeId v, NodeId u) {
  for (const NodeId x : g.neighbors(v)) {
    if (x != u && !g.has_edge(u, x)) return false;
  }
  return true;
}

// N(v) ⊆ N(u) ∪ N(w) ∪ {u, w}.
bool open_subset_pair(const graph::FrozenGraph& g, NodeId v, NodeId u,
                      NodeId w) {
  for (const NodeId x : g.neighbors(v)) {
    if (x == u || x == w) continue;
    if (!g.has_edge(u, x) && !g.has_edge(w, x)) return false;
  }
  return true;
}

}  // namespace

std::vector<NodeId> wu_li_cds(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) throw std::invalid_argument("wu_li_cds: empty graph");
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("wu_li_cds: graph must be connected");
  }
  const graph::FrozenGraph fg(g);

  // Marking process: v is marked iff two of its neighbors are not
  // adjacent to each other.
  std::vector<bool> marked(n, false);
  for (NodeId v = 0; v < n; ++v) {
    const auto nb = fg.neighbors(v);
    bool mark = false;
    for (std::size_t i = 0; i < nb.size() && !mark; ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        if (!fg.has_edge(nb[i], nb[j])) {
          mark = true;
          break;
        }
      }
    }
    marked[v] = mark;
  }

  // Rule 1: unmark v if a marked neighbor u with higher id covers N[v].
  for (NodeId v = 0; v < n; ++v) {
    if (!marked[v]) continue;
    for (const NodeId u : fg.neighbors(v)) {
      if (marked[u] && u > v && closed_subset(g, v, u)) {
        marked[v] = false;
        break;
      }
    }
  }

  // Rule 2: unmark v if two *adjacent* marked neighbors u, w with higher
  // ids jointly cover N(v).
  for (NodeId v = 0; v < n; ++v) {
    if (!marked[v]) continue;
    const auto nb = fg.neighbors(v);
    bool unmark = false;
    for (std::size_t i = 0; i < nb.size() && !unmark; ++i) {
      const NodeId u = nb[i];
      if (!marked[u] || u <= v) continue;
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        const NodeId w = nb[j];
        if (!marked[w] || w <= v || !fg.has_edge(u, w)) continue;
        if (open_subset_pair(g, v, u, w)) {
          unmark = true;
          break;
        }
      }
    }
    if (unmark) marked[v] = false;
  }

  std::vector<NodeId> cds;
  for (NodeId v = 0; v < n; ++v) {
    if (marked[v]) cds.push_back(v);
  }
  if (cds.empty()) {
    // Complete graph (or single node): any single node dominates and is
    // trivially connected.
    cds.push_back(static_cast<NodeId>(n - 1));
  }
  return cds;
}

}  // namespace mcds::baselines
