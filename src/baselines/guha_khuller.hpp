#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file guha_khuller.hpp
/// The classic centralized greedy CDS of Guha & Khuller (1998) — the
/// standard non-geometric baseline (ratio ln Δ + 3 on general graphs).
/// Grows a connected black tree; at each step colors black the gray node
/// — or gray+white pair — that whitens the most white nodes.

namespace mcds::baselines {

using graph::Graph;
using graph::NodeId;

/// Runs the Guha–Khuller greedy. Requires a connected graph with >= 1
/// node; returns the CDS in ascending node id. For a single node the CDS
/// is that node.
[[nodiscard]] std::vector<NodeId> guha_khuller_cds(const Graph& g);

}  // namespace mcds::baselines
