#include "baselines/phase2_ablation.hpp"

#include <limits>
#include <stdexcept>

#include "baselines/connect_util.hpp"
#include "core/greedy_connect.hpp"
#include "core/waf.hpp"
#include "graph/subgraph.hpp"
#include "sim/rng.hpp"

namespace mcds::baselines {

const char* to_string(ConnectorPolicy policy) noexcept {
  switch (policy) {
    case ConnectorPolicy::kTreeParent: return "tree-parent [10]";
    case ConnectorPolicy::kMaxGain: return "max-gain (Sec IV)";
    case ConnectorPolicy::kFirstPositiveGain: return "first-positive";
    case ConnectorPolicy::kRandomPositiveGain: return "random-positive";
    case ConnectorPolicy::kShortestPath: return "shortest-path [8]";
  }
  return "unknown";
}

namespace {

// Gain-driven selection shared by the positive-gain policies: keeps
// adding a connector with gain >= 1 until one component remains.
// `pick_max` selects the maximum-gain node; otherwise the rule picks
// among positive-gain nodes (first by id, or uniformly at random).
std::vector<NodeId> gain_policy_connectors(const Graph& g,
                                           const std::vector<NodeId>& mis,
                                           bool pick_max, bool random,
                                           std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  const graph::FrozenGraph fg(g);
  std::vector<bool> in_set(n, false);
  std::vector<NodeId> members = mis;
  for (const NodeId u : mis) in_set[u] = true;
  std::vector<NodeId> connectors;
  sim::Rng rng(seed);

  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> comp(n), mark(n);
  while (true) {
    const auto [labels, q] = graph::subset_components(g, members);
    if (q <= 1) break;
    std::fill(comp.begin(), comp.end(), kUnset);
    std::fill(mark.begin(), mark.end(), kUnset);
    for (std::size_t i = 0; i < members.size(); ++i) {
      comp[members[i]] = labels[i];
    }
    NodeId best = graph::kNoNode;
    std::size_t best_gain = 0;
    std::vector<NodeId> positive;
    for (NodeId w = 0; w < n; ++w) {
      if (in_set[w]) continue;
      std::size_t distinct = 0;
      for (const NodeId v : fg.neighbors(w)) {
        const std::uint32_t c = comp[v];
        if (c != kUnset && mark[c] != w) {
          mark[c] = w;
          ++distinct;
        }
      }
      if (distinct >= 2) {
        positive.push_back(w);
        if (distinct - 1 > best_gain) {
          best_gain = distinct - 1;
          best = w;
        }
      }
    }
    if (positive.empty()) {
      throw std::logic_error(
          "gain policy: no positive-gain node although q > 1");
    }
    NodeId chosen;
    if (pick_max) {
      chosen = best;
    } else if (random) {
      chosen = positive[rng.uniform_int(positive.size())];
    } else {
      chosen = positive.front();  // smallest id
    }
    connectors.push_back(chosen);
    members.push_back(chosen);
    in_set[chosen] = true;
  }
  return connectors;
}

std::vector<NodeId> merge(const Graph& g, const std::vector<bool>& in_mis,
                          const std::vector<NodeId>& connectors) {
  std::vector<bool> in = in_mis;
  for (const NodeId c : connectors) in[c] = true;
  std::vector<NodeId> cds;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in[v]) cds.push_back(v);
  }
  return cds;
}

}  // namespace

Phase2Result cds_with_policy(const Graph& g, ConnectorPolicy policy,
                             NodeId root, std::uint64_t seed) {
  Phase2Result out;
  switch (policy) {
    case ConnectorPolicy::kTreeParent: {
      auto waf = core::waf_cds(g, root);
      out.phase1 = std::move(waf.phase1);
      out.connectors = std::move(waf.connectors);
      out.cds = std::move(waf.cds);
      return out;
    }
    case ConnectorPolicy::kMaxGain: {
      auto greedy = core::greedy_cds(g, root);
      out.phase1 = std::move(greedy.phase1);
      out.connectors = std::move(greedy.connectors);
      out.cds = std::move(greedy.cds);
      return out;
    }
    case ConnectorPolicy::kFirstPositiveGain:
    case ConnectorPolicy::kRandomPositiveGain: {
      out.phase1 = core::bfs_first_fit_mis(g, root);
      out.connectors = gain_policy_connectors(
          g, out.phase1.mis, /*pick_max=*/false,
          policy == ConnectorPolicy::kRandomPositiveGain, seed);
      out.cds = merge(g, out.phase1.in_mis, out.connectors);
      return out;
    }
    case ConnectorPolicy::kShortestPath: {
      out.phase1 = core::bfs_first_fit_mis(g, root);
      out.connectors = connect_via_shortest_paths(g, out.phase1.mis);
      out.cds = merge(g, out.phase1.in_mis, out.connectors);
      return out;
    }
  }
  throw std::invalid_argument("cds_with_policy: unknown policy");
}

}  // namespace mcds::baselines
