#include "baselines/prune.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/validate.hpp"

namespace mcds::baselines {

std::vector<NodeId> prune_cds(const Graph& g, std::vector<NodeId> cds) {
  if (!core::is_cds(g, cds)) {
    throw std::invalid_argument("prune_cds: input is not a CDS");
  }
  std::sort(cds.begin(), cds.end(), std::greater<>());
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < cds.size(); ++i) {
      if (cds.size() == 1) break;
      std::vector<NodeId> trial;
      trial.reserve(cds.size() - 1);
      for (std::size_t j = 0; j < cds.size(); ++j) {
        if (j != i) trial.push_back(cds[j]);
      }
      if (core::is_cds(g, trial)) {
        cds = std::move(trial);
        changed = true;
        --i;  // re-test the element now at position i
      }
    }
  }
  std::sort(cds.begin(), cds.end());
  return cds;
}

}  // namespace mcds::baselines
