#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file connect_util.hpp
/// Shortest-path interconnection of a dominating set. Unlike the
/// max-gain greedy of Section IV (which relies on the 2-hop separation
/// of the BFS first-fit MIS), this works for *any* seed set in a
/// connected graph: it repeatedly joins the component of the first seed
/// to the nearest other component along a shortest path.

namespace mcds::baselines {

using graph::Graph;
using graph::NodeId;

/// Returns the connector nodes (not in \p seeds) whose addition makes
/// G[seeds ∪ connectors] connected. Preconditions: g connected and
/// seeds non-empty.
[[nodiscard]] std::vector<NodeId> connect_via_shortest_paths(
    const Graph& g, const std::vector<NodeId>& seeds);

/// Convenience: the union seeds ∪ connect_via_shortest_paths(seeds),
/// ascending node id.
[[nodiscard]] std::vector<NodeId> connected_closure(
    const Graph& g, const std::vector<NodeId>& seeds);

}  // namespace mcds::baselines
