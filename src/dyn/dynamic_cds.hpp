#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/local_repair.hpp"
#include "core/validate.hpp"
#include "dist/maintenance.hpp"
#include "geom/vec2.hpp"
#include "graph/delta_graph.hpp"
#include "graph/graph.hpp"
#include "obs/obs.hpp"
#include "udg/grid_index.hpp"

/// \file dynamic_cds.hpp
/// The incremental dynamic-CDS engine: one object that owns the three
/// layers of the streaming path and keeps them consistent per event.
///
///   udg::GridIndex      position → exact unit-disk edge deltas
///   graph::DeltaGraph   edge deltas → mutable topology over a CSR base
///   core::LocalBackbone edge deltas → localized MIS + connector repair
///
/// Every insert/move/erase/revive costs O(cells touched + Σ deg(touched)
/// + repair scope) instead of the O(n + m) solve-from-scratch, while the
/// maintained set stays a valid CDS (forest) of the alive topology after
/// *every* event. Two amortized policies bound the state: when the
/// backbone drifts past the paper's 4|MIS|+12 envelope the connectors
/// are re-derived from the maintained MIS (restoring |B| <= 2|MIS|), and
/// when the DeltaGraph overlay outgrows its threshold it is compacted
/// into a fresh CSR. Epochs bump whenever the backbone changes, so
/// view() hands dist::SelfHealingCds::reconcile() an epoch-stamped
/// BackboneView that merges like any partition replica's.

namespace mcds::dyn {

using graph::NodeId;

struct DynParams {
  double radius = 1.0;             ///< unit-disk communication radius
  double envelope_factor = 4.0;    ///< rebuild when |B| > f·|MIS| + bias
  std::size_t envelope_bias = 12;
  double compact_fraction = 0.25;  ///< DeltaGraph compaction threshold
  std::size_t compact_min_edits = 1024;
};

enum class EventKind : std::uint8_t { kInsert, kMove, kErase, kRevive };

/// What one event did to the maintained structure.
struct EventReport {
  EventKind kind = EventKind::kMove;
  std::size_t edges_added = 0;
  std::size_t edges_removed = 0;
  core::RepairStats repair;
  bool rebuilt = false;    ///< envelope-triggered connector re-derivation
  bool compacted = false;  ///< overlay compacted into a fresh CSR
  std::size_t epoch = 0;   ///< engine epoch after the event
};

/// Incrementally maintained CDS over a churning node population.
class DynamicCds {
 public:
  /// Builds the initial structure over \p points (all alive) with a
  /// from-scratch solve. \p obs (null sinks by default) provides
  /// per-event-type counters ("dyn.events.*"), rebuild/compaction
  /// counters and spans ("dyn.rebuild", "dyn.compact") and the
  /// repair-scope histogram ("dyn.repair_scope").
  explicit DynamicCds(std::span<const geom::Vec2> points,
                      DynParams params = {}, const obs::Obs& obs = {});

  /// Adds a new alive node at \p p; returns its id. Fills \p report if
  /// given.
  NodeId insert(geom::Vec2 p, EventReport* report = nullptr);

  /// Repositions the alive node \p v.
  EventReport move(NodeId v, geom::Vec2 p);

  /// Fail-stops the alive node \p v (id and position slot survive).
  EventReport erase(NodeId v);

  /// Returns the dead node \p v at position \p p.
  EventReport revive(NodeId v, geom::Vec2 p);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return grid_.size();
  }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    return grid_.alive_count();
  }
  [[nodiscard]] bool alive(NodeId v) const { return grid_.alive(v); }
  [[nodiscard]] geom::Vec2 position(NodeId v) const {
    return grid_.position(v);
  }
  [[nodiscard]] std::vector<NodeId> alive_nodes() const {
    return grid_.alive_nodes();
  }

  [[nodiscard]] std::size_t cds_size() const noexcept {
    return backbone_.cds_size();
  }
  [[nodiscard]] std::size_t mis_size() const noexcept {
    return backbone_.mis_size();
  }
  [[nodiscard]] bool in_cds(NodeId v) const { return backbone_.in_cds(v); }

  /// The maintained backbone, ascending ids.
  [[nodiscard]] const std::vector<NodeId>& cds() const {
    return backbone_.cds();
  }
  /// The maintained MIS, ascending ids.
  [[nodiscard]] std::vector<NodeId> mis() const { return backbone_.mis(); }

  /// The current topology as a fresh finalized Graph (dead nodes
  /// isolated). O(n + m).
  [[nodiscard]] graph::Graph topology() const { return g_.materialize(); }

  [[nodiscard]] const graph::DeltaGraph& delta_graph() const noexcept {
    return g_;
  }
  [[nodiscard]] const udg::GridIndex& grid() const noexcept { return grid_; }

  /// Validates the maintained backbone against the alive-induced
  /// topology via core::check_cds_components. O(n + m) — a test/debug
  /// tool, not a per-event cost.
  [[nodiscard]] core::CdsCheck check() const;

  /// Backbone changes so far (the engine's replica epoch).
  [[nodiscard]] std::size_t epoch() const noexcept { return epoch_; }

  /// This engine's epoch-stamped claim over the nodes it speaks for
  /// (the alive set), mergeable by dist::SelfHealingCds::reconcile().
  [[nodiscard]] dist::BackboneView view() const;

  /// Envelope-triggered connector rebuilds so far.
  [[nodiscard]] std::size_t rebuilds() const noexcept { return rebuilds_; }
  /// Overlay compactions so far.
  [[nodiscard]] std::size_t compactions() const noexcept {
    return g_.compactions();
  }

 private:
  EventReport finish(EventKind kind, NodeId node, core::NodeChange change);

  DynParams params_;
  udg::GridIndex grid_;
  graph::DeltaGraph g_;
  core::LocalBackbone backbone_;
  graph::EdgeDelta delta_;  ///< reused per-event scratch
  std::size_t epoch_ = 0;
  std::size_t rebuilds_ = 0;
  obs::Obs obs_;
  obs::Counter* c_event_[4] = {nullptr, nullptr, nullptr, nullptr};
  obs::Counter* c_rebuilds_ = nullptr;
  obs::Counter* c_compactions_ = nullptr;
  obs::Histogram* h_scope_ = nullptr;
};

}  // namespace mcds::dyn
