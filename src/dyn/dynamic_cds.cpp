#include "dyn/dynamic_cds.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/subgraph.hpp"
#include "obs/export.hpp"
#include "obs/timer.hpp"

namespace mcds::dyn {

DynamicCds::DynamicCds(std::span<const geom::Vec2> points, DynParams params,
                       const obs::Obs& obs)
    : params_(params),
      grid_(points, params.radius),
      g_(grid_.build_graph(), params.compact_fraction,
         params.compact_min_edits),
      backbone_(g_, grid_.alive_flags()),
      obs_(obs),
      c_event_{obs.counter("dyn.events.insert"),
               obs.counter("dyn.events.move"),
               obs.counter("dyn.events.erase"),
               obs.counter("dyn.events.revive")},
      c_rebuilds_(obs.counter("dyn.rebuilds")),
      c_compactions_(obs.counter("dyn.compactions")),
      h_scope_(obs.histogram("dyn.repair_scope")) {
  if (!(params_.envelope_factor >= 1.0)) {
    throw std::invalid_argument("DynamicCds: envelope_factor must be >= 1");
  }
}

NodeId DynamicCds::insert(geom::Vec2 p, EventReport* report) {
  delta_.clear();
  const NodeId id = grid_.insert(p, delta_);
  const NodeId gid = g_.add_node();
  if (gid != id) throw std::logic_error("DynamicCds: id drift");
  const EventReport r = finish(EventKind::kInsert, id, core::NodeChange::kBorn);
  if (report != nullptr) *report = r;
  return id;
}

EventReport DynamicCds::move(NodeId v, geom::Vec2 p) {
  delta_.clear();
  grid_.move(v, p, delta_);
  return finish(EventKind::kMove, v, core::NodeChange::kNone);
}

EventReport DynamicCds::erase(NodeId v) {
  delta_.clear();
  grid_.erase(v, delta_);
  return finish(EventKind::kErase, v, core::NodeChange::kDied);
}

EventReport DynamicCds::revive(NodeId v, geom::Vec2 p) {
  delta_.clear();
  grid_.revive(v, p, delta_);
  return finish(EventKind::kRevive, v, core::NodeChange::kBorn);
}

EventReport DynamicCds::finish(EventKind kind, NodeId node,
                               core::NodeChange change) {
  EventReport r;
  r.kind = kind;
  r.edges_added = delta_.added.size();
  r.edges_removed = delta_.removed.size();
  g_.apply(delta_);
  r.repair = backbone_.on_event(g_, grid_.alive_flags(), node, change, delta_);
  if (backbone_.envelope_exceeded(params_.envelope_factor,
                                  params_.envelope_bias)) {
    obs::ScopedTimer t(obs_, "dyn.rebuild");
    backbone_.rebuild_connectors(g_, grid_.alive_flags());
    r.rebuilt = true;
    ++rebuilds_;
    if (c_rebuilds_) c_rebuilds_->add();
  }
  if (g_.compaction_due()) {
    obs::ScopedTimer t(obs_, "dyn.compact");
    g_.compact();
    r.compacted = true;
    if (c_compactions_) c_compactions_->add();
  }
  if (r.repair.changed() || r.rebuilt) ++epoch_;
  r.epoch = epoch_;
  if (c_event_[static_cast<std::size_t>(kind)]) {
    c_event_[static_cast<std::size_t>(kind)]->add();
  }
  if (h_scope_) h_scope_->record(static_cast<double>(r.repair.scope));
  // Long-run telemetry: one snapshot-sink tick per churn event.
  obs::tick_snapshot(obs_);
  return r;
}

core::CdsCheck DynamicCds::check() const {
  const graph::Graph full = g_.materialize();
  const std::vector<NodeId> alive_list = grid_.alive_nodes();
  const auto induced = graph::induced_subgraph(full, alive_list);
  // Remap the backbone into induced-subgraph ids (alive_list is
  // ascending, so local id = index in it).
  std::vector<NodeId> local_cds;
  local_cds.reserve(backbone_.cds_size());
  for (const NodeId v : backbone_.cds()) {
    const auto it =
        std::lower_bound(alive_list.begin(), alive_list.end(), v);
    if (it == alive_list.end() || *it != v) {
      core::CdsCheck bad;
      bad.ok = false;
      bad.defect = core::CdsDefect::kUndominated;
      bad.witness = v;  // a dead node is claimed by the backbone
      return bad;
    }
    local_cds.push_back(
        static_cast<NodeId>(std::distance(alive_list.begin(), it)));
  }
  return core::check_cds_components(induced.graph, local_cds);
}

dist::BackboneView DynamicCds::view() const {
  dist::BackboneView v;
  v.island = grid_.alive_nodes();
  v.cds = backbone_.cds();
  v.epoch = epoch_;
  return v;
}

}  // namespace mcds::dyn
