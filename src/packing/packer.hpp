#pragma once

#include <cstdint>
#include <vector>

#include "geom/disk_union.hpp"
#include "geom/vec2.hpp"

/// \file packer.hpp
/// Stochastic maximizer for independent-point packing: how many points
/// with pairwise distance > 1 fit inside a given neighborhood region?
/// Used to probe the tightness of Theorem 3 (φ_n), Theorem 6 (11n/3 + 1)
/// and the Figure 2 construction, independently of the explicit
/// constructions.

namespace mcds::packing {

/// Options for pack_independent_points.
struct PackOptions {
  double grid_step = 0.05;      ///< candidate lattice spacing
  std::size_t restarts = 30;    ///< independent randomized greedy runs
  std::size_t ruin_rounds = 60; ///< ruin-and-recreate improvement rounds
  double ruin_fraction = 0.3;   ///< fraction of points removed per round
  std::uint64_t seed = 1;       ///< randomness seed (reproducible)
  /// If false (default), pairwise distances must be strictly > 1 (the
  /// paper's independence). If true, distance exactly 1 is allowed —
  /// Wegner's packing regime (pairwise >= 1).
  bool allow_touching = false;
};

/// Result of a packing search.
struct PackingResult {
  std::vector<geom::Vec2> points;  ///< best independent set found
  std::size_t evaluations = 0;     ///< candidate insertions attempted
};

/// Searches for a large set of points inside \p region with pairwise
/// distances > 1 (randomized greedy over a candidate lattice, improved
/// by ruin-and-recreate). The result is a lower bound witness on the
/// region's independence packing number; its independence is guaranteed.
[[nodiscard]] PackingResult pack_independent_points(
    const geom::DiskUnion& region, const PackOptions& options = {});

}  // namespace mcds::packing
