#pragma once

#include <vector>

#include "geom/vec2.hpp"

/// \file fig1.hpp
/// Explicit constructions of the paper's Figure 1: tight independent
/// packings in the neighborhood of a 2-star (8 points = φ_2) and of a
/// 3-star (12 points = φ_3), parameterized by the small ε of the paper.

namespace mcds::packing {

/// A tight-instance witness: a planar set (`centers`) plus an
/// independent point set contained in its neighborhood.
struct TightInstance {
  std::vector<geom::Vec2> centers;      ///< the star / path nodes
  std::vector<geom::Vec2> independent;  ///< pairwise distances > 1
};

/// Figure 1 (2-star): centers {o, u1} with |o u1| = 1; 8 independent
/// points in D_o ∪ D_{u1}. Requires 0 < eps < 0.05.
[[nodiscard]] TightInstance fig1_two_star(double eps = 0.02);

/// Figure 1 (3-star): centers {o, u1, u2} with u1 = (1,0), u2 = (-1,0);
/// 12 independent points in the star's neighborhood. Requires
/// 0 < eps < 0.05.
[[nodiscard]] TightInstance fig1_three_star(double eps = 0.02);

/// Validates a TightInstance: `independent` is pairwise > 1 apart and
/// every point lies within unit distance of some center.
[[nodiscard]] bool verify_tight_instance(const TightInstance& inst);

}  // namespace mcds::packing
