#pragma once

#include <vector>

#include "geom/vec2.hpp"

/// \file arc_polygon.hpp
/// Arc-polygons (appendix, first paragraph): bounded regions whose
/// boundary consists of minor unit-arcs and line segments. The appendix
/// reduces diameter claims about such regions to their vertex sets:
/// "the diameter of an arc-polygon is at most one iff the diameter of
/// its vertex set is at most one". This module represents arc-polygon
/// boundaries and probes that reduction numerically (the arc triangles
/// of Figures 5-9 are instances).

namespace mcds::packing {

using geom::Vec2;

/// One boundary piece: either a straight segment to the next vertex or
/// a minor unit-arc (radius 1, central angle <= 180°) bulging toward
/// `arc_center`'s far side.
struct BoundaryPiece {
  /// Endpoint of the piece (the next vertex of the arc-polygon).
  Vec2 to;
  /// If true, the piece is a minor unit-arc with the given center;
  /// otherwise it is the straight segment.
  bool is_arc = false;
  Vec2 arc_center;
};

/// An arc-polygon given by a starting vertex and boundary pieces that
/// return to it. Vertices are the piece endpoints.
class ArcPolygon {
 public:
  /// \p start plus \p pieces; the final piece must end at \p start
  /// (within tolerance) — validated lazily by is_closed().
  ArcPolygon(Vec2 start, std::vector<BoundaryPiece> pieces);

  /// The vertex set (piece endpoints; size == number of pieces).
  [[nodiscard]] const std::vector<Vec2>& vertices() const noexcept {
    return vertices_;
  }

  /// True if the boundary returns to the start and every arc piece is a
  /// *minor* arc of a unit circle through both of its endpoints.
  [[nodiscard]] bool well_formed(double tol = 1e-9) const;

  /// Densely sampled boundary points (arcs sampled at ~`step` arc
  /// length; segments at their endpoints plus interior samples).
  [[nodiscard]] std::vector<Vec2> sample_boundary(double step = 0.01) const;

  /// Diameter of the sampled boundary (the region's diameter: for a
  /// closed bounded region the diameter is attained on the boundary).
  [[nodiscard]] double boundary_diameter(double step = 0.01) const;

  /// Diameter of the vertex set alone.
  [[nodiscard]] double vertex_diameter() const;

 private:
  Vec2 start_;
  std::vector<BoundaryPiece> pieces_;
  std::vector<Vec2> vertices_;
};

/// The arc triangle used throughout the paper's appendix: the region
/// bounded by three minor unit-arcs with the given centers, joining the
/// three pairwise circle-intersection vertices \p a, \p b, \p c, where
/// the arc from a to b lies on the circle centered at \p c_ab, etc.
/// Returns a well-formed ArcPolygon. Throws std::invalid_argument if a
/// vertex is not at distance 1 from its two arc centers.
[[nodiscard]] ArcPolygon make_arc_triangle(Vec2 a, Vec2 b, Vec2 c,
                                           Vec2 center_ab, Vec2 center_bc,
                                           Vec2 center_ca);

}  // namespace mcds::packing
