#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/graph.hpp"

/// \file star_decomposition.hpp
/// Constructive version of Lemma 4: every connected planar set of at
/// least two points has a *non-trivial star-decomposition* — a partition
/// into stars (sets contained in the unit disk of one of their members)
/// none of which is a singleton. The decomposition is the engine that
/// lifts the star packing bound (Theorem 3) to arbitrary connected sets
/// (Lemma 5 / Theorem 6).

namespace mcds::packing {

using graph::NodeId;

/// A star: members[center_index] is the point whose unit disk contains
/// every member.
struct Star {
  std::size_t center_index = 0;     ///< index into members
  std::vector<NodeId> members;      ///< point indices (into the input set)

  [[nodiscard]] NodeId center() const { return members.at(center_index); }
  [[nodiscard]] std::size_t size() const noexcept { return members.size(); }
};

/// Computes a non-trivial star-decomposition of the connected point set
/// \p points (unit-disk adjacency). Follows the inductive proof of
/// Lemma 4. Preconditions: points.size() >= 2 and the induced UDG is
/// connected; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<Star> star_decomposition(
    std::span<const geom::Vec2> points);

/// True if \p star is a star of \p points: all members lie within unit
/// distance of the center point.
[[nodiscard]] bool is_star(std::span<const geom::Vec2> points,
                           const Star& star);

/// True if \p stars is a valid non-trivial star-decomposition of
/// \p points: a partition into stars, each of size >= 2... except that a
/// decomposition of a 1-point set would be trivially empty (the lemma
/// requires >= 2 points).
[[nodiscard]] bool is_nontrivial_star_decomposition(
    std::span<const geom::Vec2> points, std::span<const Star> stars);

}  // namespace mcds::packing
