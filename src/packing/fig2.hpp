#pragma once

#include <cstddef>

#include "packing/fig1.hpp"

/// \file fig2.hpp
/// Explicit construction of the paper's Figure 2: the neighborhood of
/// n >= 3 collinear points with consecutive distance one contains
/// 3(n+1) independent points. The construction generalizes Figure 1:
///
///  * each end disk carries 4 boundary points (top/bottom just past the
///    vertical diameter, plus two at ±(30°+δ/3), evenly spread so all
///    consecutive central angles exceed 60°);
///  * each interior node k carries a top point (k, 1-a_k) and a bottom
///    point (k, -(1-a_k)) with alternating heights a_k ∈ {ε, 2ε}, so
///    horizontally-adjacent points are sqrt(1 + ε²) > 1 apart;
///  * each edge midpoint carries a near-axis point (k+1/2, ±ε) with
///    alternating signs.
///
/// Total: 8 + 2(n-2) + (n-1) = 3n + 3 = 3(n+1).

namespace mcds::packing {

/// Builds the Figure 2 instance for \p n collinear unit-spaced nodes.
/// Requires n >= 3 and 0 < eps < 0.04. The returned witness has exactly
/// 3(n+1) independent points.
[[nodiscard]] TightInstance fig2_linear(std::size_t n, double eps = 0.02);

}  // namespace mcds::packing
