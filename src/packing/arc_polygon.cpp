#include "packing/arc_polygon.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/hull.hpp"

namespace mcds::packing {

namespace {

// Normalizes an angle difference into [0, 2*pi).
double ccw_span(double from, double to) noexcept {
  double span = to - from;
  while (span < 0) span += 2.0 * std::numbers::pi;
  while (span >= 2.0 * std::numbers::pi) span -= 2.0 * std::numbers::pi;
  return span;
}

// The minor-arc sweep between two points on the unit circle around
// `center`, returned as (start angle, signed span) with |span| <= pi.
std::pair<double, double> minor_arc(Vec2 center, Vec2 from, Vec2 to) {
  const double a0 = (from - center).angle();
  const double a1 = (to - center).angle();
  const double ccw = ccw_span(a0, a1);
  if (ccw <= std::numbers::pi) return {a0, ccw};
  return {a0, ccw - 2.0 * std::numbers::pi};  // go clockwise instead
}

}  // namespace

ArcPolygon::ArcPolygon(Vec2 start, std::vector<BoundaryPiece> pieces)
    : start_(start), pieces_(std::move(pieces)) {
  if (pieces_.empty()) {
    throw std::invalid_argument("ArcPolygon: need at least one piece");
  }
  vertices_.reserve(pieces_.size());
  for (const auto& p : pieces_) vertices_.push_back(p.to);
}

bool ArcPolygon::well_formed(double tol) const {
  if (!geom::almost_equal(pieces_.back().to, start_, tol)) return false;
  Vec2 cur = start_;
  for (const auto& p : pieces_) {
    if (p.is_arc) {
      // Both endpoints on the unit circle around the arc center.
      if (std::abs(geom::dist(cur, p.arc_center) - 1.0) > tol) return false;
      if (std::abs(geom::dist(p.to, p.arc_center) - 1.0) > tol) return false;
    }
    cur = p.to;
  }
  return true;
}

std::vector<Vec2> ArcPolygon::sample_boundary(double step) const {
  if (!(step > 0.0)) {
    throw std::invalid_argument("sample_boundary: step must be positive");
  }
  std::vector<Vec2> out;
  Vec2 cur = start_;
  for (const auto& p : pieces_) {
    out.push_back(cur);
    if (p.is_arc) {
      const auto [a0, span] = minor_arc(p.arc_center, cur, p.to);
      const auto samples = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::ceil(std::abs(span) / step)));
      for (std::size_t i = 1; i < samples; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(samples);
        out.push_back(geom::from_polar(p.arc_center, 1.0, a0 + span * t));
      }
    } else {
      const double len = geom::dist(cur, p.to);
      const auto samples = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::ceil(len / step)));
      for (std::size_t i = 1; i < samples; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(samples);
        out.push_back(geom::lerp(cur, p.to, t));
      }
    }
    cur = p.to;
  }
  return out;
}

double ArcPolygon::boundary_diameter(double step) const {
  return geom::diameter(sample_boundary(step));
}

double ArcPolygon::vertex_diameter() const {
  return geom::diameter(vertices_);
}

ArcPolygon make_arc_triangle(Vec2 a, Vec2 b, Vec2 c, Vec2 center_ab,
                             Vec2 center_bc, Vec2 center_ca) {
  const auto check = [](Vec2 v, Vec2 center, const char* what) {
    if (std::abs(geom::dist(v, center) - 1.0) > 1e-7) {
      throw std::invalid_argument(
          std::string("make_arc_triangle: vertex not on unit circle of ") +
          what);
    }
  };
  check(a, center_ab, "ab");
  check(b, center_ab, "ab");
  check(b, center_bc, "bc");
  check(c, center_bc, "bc");
  check(c, center_ca, "ca");
  check(a, center_ca, "ca");
  std::vector<BoundaryPiece> pieces;
  pieces.push_back({b, true, center_ab});
  pieces.push_back({c, true, center_bc});
  pieces.push_back({a, true, center_ca});
  return ArcPolygon(a, std::move(pieces));
}

}  // namespace mcds::packing
