#include "packing/fig1.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/closest.hpp"

namespace mcds::packing {

using geom::Vec2;

namespace {

void check_eps(double eps) {
  if (!(eps > 0.0) || eps >= 0.05) {
    throw std::invalid_argument("fig1: eps must lie in (0, 0.05)");
  }
}

// The four boundary points of an end disk centered at `c`, opening
// toward +x (`dir` = +1) or -x (`dir` = -1): the paper's p1, q1, q2, p2.
// p1 sits just past the vertical diameter (angle 90° + delta with
// delta ≈ eps²/4, the margin that keeps it > 1 from the w-point of the
// neighboring disk), and the four points are evenly spread over the
// major arc, so consecutive central angles exceed 60°.
std::vector<Vec2> end_arc_points(Vec2 c, int dir, double eps) {
  const double delta = eps * eps / 4.0;
  const double a1 = std::numbers::pi / 2.0 + delta;
  const std::vector<double> angles{a1, a1 / 3.0, -a1 / 3.0, -a1};
  std::vector<Vec2> out;
  out.reserve(angles.size());
  for (const double a : angles) {
    out.push_back({c.x + dir * std::cos(a), c.y + std::sin(a)});
  }
  return out;
}

// The central cluster of Figure 1: v1, w1, v2, w2 around the origin o.
std::vector<Vec2> center_cluster(double eps) {
  return {{0.5, eps}, {0.0, 1.0 - eps}, {-0.5, -eps}, {0.0, -1.0 + eps}};
}

}  // namespace

TightInstance fig1_two_star(double eps) {
  check_eps(eps);
  TightInstance inst;
  inst.centers = {{0.0, 0.0}, {1.0, 0.0}};
  inst.independent = center_cluster(eps);
  for (const Vec2 p : end_arc_points({1.0, 0.0}, +1, eps)) {
    inst.independent.push_back(p);
  }
  return inst;
}

TightInstance fig1_three_star(double eps) {
  check_eps(eps);
  TightInstance inst;
  inst.centers = {{0.0, 0.0}, {1.0, 0.0}, {-1.0, 0.0}};
  inst.independent = center_cluster(eps);
  for (const Vec2 p : end_arc_points({1.0, 0.0}, +1, eps)) {
    inst.independent.push_back(p);
  }
  for (const Vec2 p : end_arc_points({-1.0, 0.0}, -1, eps)) {
    inst.independent.push_back(p);
  }
  return inst;
}

bool verify_tight_instance(const TightInstance& inst) {
  if (!geom::is_independent_point_set(inst.independent, 1.0)) return false;
  for (const Vec2 p : inst.independent) {
    bool covered = false;
    for (const Vec2 c : inst.centers) {
      // Closed-disk membership with a tolerance for points constructed
      // exactly on a boundary circle.
      if (geom::dist2(p, c) <= 1.0 + 1e-12) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace mcds::packing
