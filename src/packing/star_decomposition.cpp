#include "packing/star_decomposition.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "udg/builder.hpp"

namespace mcds::packing {

using geom::Vec2;
using graph::Graph;

namespace {

// Unit-disk adjacency criterion, identical to udg::build_udg's.
bool within_unit(Vec2 a, Vec2 b) noexcept { return geom::dist2(a, b) <= 1.0; }

struct Decomposer {
  const Graph& g;
  std::span<const Vec2> pts;

  // Decomposes the connected subset V (|V| >= 2) and appends the stars.
  void decompose(std::vector<NodeId> V, std::vector<Star>& out) {
    if (V.size() < 2) {
      throw std::logic_error("star_decomposition: internal subset < 2");
    }
    if (V.size() == 2) {
      out.push_back(Star{0, std::move(V)});
      return;
    }
    const NodeId v = V.front();
    std::vector<NodeId> rest(V.begin() + 1, V.end());
    const auto [labels, count] = graph::subset_components(g, rest);

    std::vector<std::vector<NodeId>> comps(count);
    for (std::size_t i = 0; i < rest.size(); ++i) {
      comps[labels[i]].push_back(rest[i]);
    }

    std::vector<NodeId> singles;
    const std::size_t first_new_star = out.size();
    for (auto& comp : comps) {
      if (comp.size() == 1) {
        singles.push_back(comp.front());
      } else {
        decompose(std::move(comp), out);
      }
    }

    if (!singles.empty()) {
      // Case 1: the singleton components are all adjacent to v; they form
      // a star centered at v.
      Star s;
      s.center_index = 0;
      s.members.push_back(v);
      for (const NodeId x : singles) s.members.push_back(x);
      out.push_back(std::move(s));
      return;
    }

    // Case 2: no singleton components. Attach v via a neighbor u.
    NodeId u = graph::kNoNode;
    std::vector<bool> in_v(g.num_nodes(), false);
    for (const NodeId x : V) in_v[x] = true;
    for (const NodeId x : g.neighbors(v)) {
      if (in_v[x]) {
        u = x;
        break;
      }
    }
    if (u == graph::kNoNode) {
      throw std::logic_error("star_decomposition: connected subset has "
                             "isolated pivot");
    }
    // Find the star (created in this call's recursion) containing u.
    std::size_t star_idx = out.size();
    for (std::size_t i = first_new_star; i < out.size(); ++i) {
      if (std::find(out[i].members.begin(), out[i].members.end(), u) !=
          out[i].members.end()) {
        star_idx = i;
        break;
      }
    }
    if (star_idx == out.size()) {
      throw std::logic_error("star_decomposition: neighbor star not found");
    }
    Star& s = out[star_idx];
    const bool fits_u = std::all_of(
        s.members.begin(), s.members.end(),
        [&](NodeId m) { return within_unit(pts[m], pts[u]); });
    if (fits_u) {
      // S ⊆ D_u: S ∪ {v} is a star centered at u.
      const auto u_pos = static_cast<std::size_t>(
          std::find(s.members.begin(), s.members.end(), u) -
          s.members.begin());
      s.members.push_back(v);
      s.center_index = u_pos;
    } else {
      // |S| >= 3 and the center is not u (else S ⊆ D_u): split off u and
      // pair it with v.
      const NodeId center = s.center();
      s.members.erase(std::find(s.members.begin(), s.members.end(), u));
      s.center_index = static_cast<std::size_t>(
          std::find(s.members.begin(), s.members.end(), center) -
          s.members.begin());
      out.push_back(Star{0, {u, v}});
    }
  }
};

}  // namespace

std::vector<Star> star_decomposition(std::span<const Vec2> points) {
  if (points.size() < 2) {
    throw std::invalid_argument("star_decomposition: need >= 2 points");
  }
  const Graph g = udg::build_udg(points, 1.0);
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("star_decomposition: set must be connected");
  }
  std::vector<NodeId> all(points.size());
  for (NodeId i = 0; i < points.size(); ++i) all[i] = i;
  std::vector<Star> out;
  Decomposer{g, points}.decompose(std::move(all), out);
  return out;
}

bool is_star(std::span<const Vec2> points, const Star& star) {
  if (star.members.empty() || star.center_index >= star.members.size()) {
    return false;
  }
  const Vec2 c = points[star.center()];
  return std::all_of(star.members.begin(), star.members.end(),
                     [&](NodeId m) { return within_unit(points[m], c); });
}

bool is_nontrivial_star_decomposition(std::span<const Vec2> points,
                                      std::span<const Star> stars) {
  std::vector<bool> seen(points.size(), false);
  std::size_t total = 0;
  for (const Star& s : stars) {
    if (!is_star(points, s)) return false;
    if (s.size() < 2) return false;
    for (const NodeId m : s.members) {
      if (m >= points.size() || seen[m]) return false;
      seen[m] = true;
      ++total;
    }
  }
  return total == points.size();
}

}  // namespace mcds::packing
