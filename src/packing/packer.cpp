#include "packing/packer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "sim/rng.hpp"

namespace mcds::packing {

using geom::Vec2;

namespace {

// Occupancy grid with cell size 1 for O(1) conflict checks between
// chosen points (pairwise distance must exceed 1).
class ConflictGrid {
 public:
  explicit ConflictGrid(bool allow_touching)
      // With touching allowed, only distances strictly below 1 conflict;
      // the small epsilon absorbs floating-point noise in lattice grids.
      : limit2_(allow_touching ? 1.0 - 1e-9 : 1.0) {}

  [[nodiscard]] bool conflicts(Vec2 p) const {
    const long cx = static_cast<long>(std::floor(p.x));
    const long cy = static_cast<long>(std::floor(p.y));
    for (long dy = -1; dy <= 1; ++dy) {
      for (long dx = -1; dx <= 1; ++dx) {
        const auto it = cells_.find(key(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        for (const Vec2 q : it->second) {
          if (geom::dist2(p, q) <= limit2_) return true;
        }
      }
    }
    return false;
  }

  void insert(Vec2 p) {
    cells_[key(static_cast<long>(std::floor(p.x)),
               static_cast<long>(std::floor(p.y)))]
        .push_back(p);
  }

 private:
  static std::uint64_t key(long cx, long cy) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx))
            << 32) |
           static_cast<std::uint32_t>(cy);
  }
  double limit2_;
  std::unordered_map<std::uint64_t, std::vector<Vec2>> cells_;
};

// Greedy insertion over `candidates` starting from `kept`.
std::vector<Vec2> greedy_fill(const std::vector<Vec2>& candidates,
                              std::vector<Vec2> kept, bool allow_touching,
                              std::size_t& evaluations) {
  ConflictGrid grid(allow_touching);
  for (const Vec2 p : kept) grid.insert(p);
  for (const Vec2 p : candidates) {
    ++evaluations;
    if (!grid.conflicts(p)) {
      grid.insert(p);
      kept.push_back(p);
    }
  }
  return kept;
}

}  // namespace

PackingResult pack_independent_points(const geom::DiskUnion& region,
                                      const PackOptions& options) {
  if (!(options.grid_step > 0.0)) {
    throw std::invalid_argument("pack: grid_step must be positive");
  }
  if (options.ruin_fraction < 0.0 || options.ruin_fraction > 1.0) {
    throw std::invalid_argument("pack: ruin_fraction must be in [0, 1]");
  }
  std::vector<Vec2> candidates = region.grid_points_inside(options.grid_step);
  sim::Rng rng(options.seed);
  PackingResult result;

  for (std::size_t r = 0; r < options.restarts; ++r) {
    rng.shuffle(candidates);
    std::vector<Vec2> cur = greedy_fill(candidates, {},
                                        options.allow_touching,
                                        result.evaluations);

    for (std::size_t round = 0; round < options.ruin_rounds; ++round) {
      // Ruin: drop a random fraction, keep the rest.
      std::vector<Vec2> kept = cur;
      rng.shuffle(kept);
      const auto drop = static_cast<std::size_t>(
          options.ruin_fraction * static_cast<double>(kept.size()));
      kept.resize(kept.size() - std::min(drop, kept.size()));
      // Recreate with a fresh candidate order.
      rng.shuffle(candidates);
      std::vector<Vec2> next =
          greedy_fill(candidates, std::move(kept), options.allow_touching,
                      result.evaluations);
      if (next.size() >= cur.size()) cur = std::move(next);
    }
    if (cur.size() > result.points.size()) result.points = std::move(cur);
  }
  return result;
}

}  // namespace mcds::packing
