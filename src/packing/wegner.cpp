#include "packing/wegner.hpp"

#include "geom/closest.hpp"

namespace mcds::packing {

bool is_wegner_witness(geom::Vec2 center, std::span<const geom::Vec2> points,
                       double min_separation) {
  for (const geom::Vec2 p : points) {
    if (geom::dist(p, center) > 2.0 + 1e-12) return false;
  }
  if (points.size() < 2) return true;
  return geom::closest_pair_distance(points) >= min_separation - 1e-12;
}

}  // namespace mcds::packing
