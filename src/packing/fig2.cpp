#include "packing/fig2.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mcds::packing {

using geom::Vec2;

TightInstance fig2_linear(std::size_t n, double eps) {
  if (n < 3) throw std::invalid_argument("fig2_linear: n must be >= 3");
  if (!(eps > 0.0) || eps >= 0.04) {
    throw std::invalid_argument("fig2_linear: eps must lie in (0, 0.04)");
  }
  TightInstance inst;
  for (std::size_t k = 0; k < n; ++k) {
    inst.centers.push_back({static_cast<double>(k), 0.0});
  }
  auto& pts = inst.independent;

  // End caps: 4 boundary points each; the top/bottom ones sit at angle
  // 90° + delta past the vertical diameter (delta ≈ eps²/4 keeps them
  // > 1 away from the neighboring interior top/bottom points), and the
  // other two at ±(90° + delta)/3, giving all consecutive pairs a
  // central angle of (90° + delta)·2/3 > 60°.
  const double delta = eps * eps / 4.0;
  const double a1 = std::numbers::pi / 2.0 + delta;
  const double xr = static_cast<double>(n - 1);
  for (const double a : {a1, a1 / 3.0, -a1 / 3.0, -a1}) {
    pts.push_back({0.0 - std::cos(a), std::sin(a)});  // left cap (dir -x)
    pts.push_back({xr + std::cos(a), std::sin(a)});   // right cap (dir +x)
  }

  // Interior nodes: top and bottom points with alternating heights.
  for (std::size_t k = 1; k + 1 < n; ++k) {
    const double a_k = (k % 2 == 1) ? eps : 2.0 * eps;
    const double x = static_cast<double>(k);
    pts.push_back({x, 1.0 - a_k});
    pts.push_back({x, -(1.0 - a_k)});
  }

  // Edge midpoints: near-axis points with alternating sign.
  for (std::size_t j = 0; j + 1 < n; ++j) {
    const double sign = (j % 2 == 0) ? 1.0 : -1.0;
    pts.push_back({static_cast<double>(j) + 0.5, sign * eps});
  }

  return inst;
}

}  // namespace mcds::packing
