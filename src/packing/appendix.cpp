#include "packing/appendix.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "geom/circle.hpp"
#include "geom/segment.hpp"

namespace mcds::packing {

namespace {

// Interior angle at vertex `at` between rays toward `toward1`/`toward2`.
double angle_at(Vec2 at, Vec2 toward1, Vec2 toward2) noexcept {
  const Vec2 r1 = toward1 - at, r2 = toward2 - at;
  const double denominator = r1.norm() * r2.norm();
  if (denominator == 0.0) return 0.0;
  const double c = std::clamp(r1.dot(r2) / denominator, -1.0, 1.0);
  return std::acos(c);
}

}  // namespace

double Lemma11Config::angle_sum() const noexcept {
  // ∠ovp: at v between o and p; ∠upv: at p between u and v.
  return angle_at(v, o, p) + angle_at(p, u, v);
}

bool Lemma11Config::hypothesis_holds(double tol) const noexcept {
  if (std::abs(geom::dist(o, v) - geom::dist(u, p)) > tol) return false;
  // Convexity of the cyclic order o -> u -> p -> v: all cross products
  // of consecutive edges share a sign.
  const Vec2 pts[4] = {o, u, p, v};
  int sign = 0;
  for (int i = 0; i < 4; ++i) {
    const Vec2 e1 = pts[(i + 1) % 4] - pts[i];
    const Vec2 e2 = pts[(i + 2) % 4] - pts[(i + 1) % 4];
    const double cr = e1.cross(e2);
    if (std::abs(cr) <= tol) return false;  // degenerate corner
    const int s = cr > 0 ? 1 : -1;
    if (sign == 0) {
      sign = s;
    } else if (s != sign) {
      return false;
    }
  }
  return true;
}

bool Lemma11Config::lemma_holds(double slack) const noexcept {
  const double sum = angle_sum();
  const double vp = geom::dist(v, p);
  const double ou = geom::dist(o, u);
  // Near the boundary (vp == ou, sum == pi) both sides flip together;
  // skip the numeric dead-band.
  if (std::abs(vp - ou) <= slack || std::abs(sum - std::numbers::pi) <= slack) {
    return true;
  }
  const bool angles_small = sum < std::numbers::pi;
  const bool vp_large = vp > ou;
  return angles_small == vp_large;
}

double Lemma12Config::diameter() const noexcept {
  return std::max({geom::dist(v1, v2), geom::dist(v1, p),
                   geom::dist(v2, p)});
}

std::optional<Lemma12Config> build_lemma12(double d, double theta) {
  if (!(d > 0.0) || d > 1.0) return std::nullopt;
  Lemma12Config cfg;
  cfg.o = {0.0, 0.0};
  cfg.u = {d, 0.0};
  const auto oa = geom::intersect(geom::unit_disk(cfg.o),
                                  geom::unit_disk(cfg.u));
  if (oa.size() != 2) return std::nullopt;
  cfg.a = oa[0].y > 0 ? oa[0] : oa[1];  // the upper intersection
  cfg.p = geom::unit_disk(cfg.u).point_at(theta);
  if (geom::dist(cfg.a, cfg.p) > 1.0 || geom::dist(cfg.o, cfg.p) < 1.0) {
    return std::nullopt;
  }

  const auto pick_same_side = [&](Vec2 line_a, Vec2 line_b,
                                  const std::vector<Vec2>& candidates)
      -> std::optional<Vec2> {
    const int want = geom::side_of_line(line_a, line_b, cfg.a);
    if (want == 0) return std::nullopt;
    for (const Vec2 c : candidates) {
      if (geom::side_of_line(line_a, line_b, c) == want) return c;
    }
    return std::nullopt;
  };

  const auto v1c = geom::intersect(geom::unit_disk(cfg.p),
                                   geom::unit_disk(cfg.o));
  const auto v2c = geom::intersect(geom::unit_disk(cfg.p),
                                   geom::unit_disk(cfg.u));
  if (v1c.size() != 2 || v2c.size() != 2) return std::nullopt;
  const auto v1 = pick_same_side(cfg.o, cfg.p, v1c);
  const auto v2 = pick_same_side(cfg.u, cfg.p, v2c);
  if (!v1 || !v2) return std::nullopt;
  cfg.v1 = *v1;
  cfg.v2 = *v2;
  return cfg;
}

}  // namespace mcds::packing
