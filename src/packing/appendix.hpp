#pragma once

#include <optional>

#include "geom/vec2.hpp"

/// \file appendix.hpp
/// Numeric formulations of the appendix geometry (Lemmas 11 and 12),
/// which underpin the proofs of Lemma 1 and Lemma 2. The paper omits
/// their proofs for space; here each is expressed as a checkable
/// predicate so the test suite and the appendix bench can probe them
/// exhaustively at machine precision.

namespace mcds::packing {

using geom::Vec2;

/// Lemma 11 configuration: a convex quadrilateral o-u-p-v (in this
/// cyclic order) with |ov| = |up|.
struct Lemma11Config {
  Vec2 o, u, p, v;

  /// ∠ovp + ∠upv in radians.
  [[nodiscard]] double angle_sum() const noexcept;

  /// True if o,u,p,v really form a convex quadrilateral with |ov|=|up|
  /// (within tolerance) — the lemma's hypothesis.
  [[nodiscard]] bool hypothesis_holds(double tol = 1e-9) const noexcept;

  /// The lemma's equivalence: ∠ovp + ∠upv <= 180° iff |vp| >= |ou|.
  /// Returns true when the two sides of the iff agree (allowing a
  /// numeric dead-band of width \p slack around the boundary case).
  [[nodiscard]] bool lemma_holds(double slack = 1e-7) const noexcept;
};

/// Lemma 12 configuration (the triple at its core): 0 < |ou| <= 1,
/// a ∈ ∂D_o ∩ ∂D_u (upper), p ∈ ∂D_u with |ap| <= 1 <= |op|,
/// v1 ∈ ∂D_p ∩ ∂D_o on the same side of the line o-p as a,
/// v2 ∈ ∂D_p ∩ ∂D_u on the same side of the line u-p as a.
/// Claim: diam({v1, v2, p}) = 1 (so the three arc-triangle corners are
/// mutually within unit distance, which the Lemma 1 proof composes).
struct Lemma12Config {
  Vec2 o, u, a, p, v1, v2;

  /// Largest pairwise distance among {v1, v2, p}.
  [[nodiscard]] double diameter() const noexcept;
};

/// Builds the Lemma 12 configuration for center distance \p d = |ou|
/// in (0, 1] and the angle \p theta of p on ∂D_u. Returns std::nullopt
/// when the hypotheses (|ap| <= 1 <= |op|, intersections exist on the
/// required sides) are not satisfiable for these parameters.
[[nodiscard]] std::optional<Lemma12Config> build_lemma12(double d,
                                                         double theta);

}  // namespace mcds::packing
