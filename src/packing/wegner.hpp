#pragma once

#include <span>

#include "geom/vec2.hpp"

/// \file wegner.hpp
/// Wegner's circle-packing theorem, as used by Theorem 3: any disk of
/// radius two contains at most 21 points with pairwise distances >= 1.
/// We expose the constant plus a witness validator so the packing bench
/// can probe the bound empirically.

namespace mcds::packing {

/// The Wegner limit for a radius-2 disk.
inline constexpr std::size_t kWegnerLimit = 21;

/// True if all \p points lie in the closed disk of radius 2 around
/// \p center and their pairwise distances are all >= \p min_separation
/// (default 1, Wegner's hypothesis; the paper's independence is the
/// strict variant with separation > 1, which is stronger).
[[nodiscard]] bool is_wegner_witness(geom::Vec2 center,
                                     std::span<const geom::Vec2> points,
                                     double min_separation = 1.0);

}  // namespace mcds::packing
