#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

/// \file subgraph.hpp
/// Induced subgraphs and subset connectivity. The CDS predicate needs
/// "G[U] is connected" for node subsets U; these helpers avoid building
/// the induced graph when only connectivity is required.

namespace mcds::graph {

/// The subgraph induced by \p nodes, plus the mapping from new ids back
/// to the original node ids (new id i corresponds to original
/// mapping[i]). Duplicate entries in \p nodes are an error.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> mapping;
};

/// Builds the induced subgraph G[nodes].
[[nodiscard]] InducedSubgraph induced_subgraph(const Graph& g,
                                               std::span<const NodeId> nodes);

/// True if the subgraph of \p g induced by \p subset is connected.
/// Empty and singleton subsets count as connected.
[[nodiscard]] bool is_connected_subset(const Graph& g,
                                       std::span<const NodeId> subset);

/// Number of connected components of G[subset] (0 for the empty subset).
[[nodiscard]] std::size_t count_components_subset(
    const Graph& g, std::span<const NodeId> subset);

/// Component label (within the subset) of every node of \p subset, in
/// subset order, plus the number of components.
[[nodiscard]] std::pair<std::vector<std::uint32_t>, std::size_t>
subset_components(const Graph& g, std::span<const NodeId> subset);

}  // namespace mcds::graph
