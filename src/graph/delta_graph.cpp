#include "graph/delta_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mcds::graph {

namespace {

/// Inserts \p x into the sorted vector \p v; returns false if present.
bool sorted_insert(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

/// Erases \p x from the sorted vector \p v; returns false if absent.
bool sorted_erase(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

void canonicalize(std::vector<std::pair<NodeId, NodeId>>& edges) {
  for (auto& e : edges) {
    if (e.first > e.second) std::swap(e.first, e.second);
  }
  std::sort(edges.begin(), edges.end());
}

}  // namespace

void EdgeDelta::normalize() {
  canonicalize(added);
  canonicalize(removed);
  // Multiset difference: an edge both added and removed (in either
  // order) nets to no change and drops from both sides.
  std::vector<std::pair<NodeId, NodeId>> net_added;
  std::vector<std::pair<NodeId, NodeId>> net_removed;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < added.size() && j < removed.size()) {
    if (added[i] < removed[j]) {
      net_added.push_back(added[i++]);
    } else if (removed[j] < added[i]) {
      net_removed.push_back(removed[j++]);
    } else {
      ++i;
      ++j;
    }
  }
  net_added.insert(net_added.end(), added.begin() + static_cast<long>(i),
                   added.end());
  net_removed.insert(net_removed.end(), removed.begin() + static_cast<long>(j),
                     removed.end());
  added = std::move(net_added);
  removed = std::move(net_removed);
}

DeltaGraph::DeltaGraph(Graph base, double compact_fraction,
                       std::size_t compact_min_edits)
    : base_(std::move(base)),
      compact_fraction_(compact_fraction),
      compact_min_edits_(compact_min_edits) {
  if (!(compact_fraction_ > 0.0)) {
    throw std::invalid_argument("DeltaGraph: compact_fraction must be > 0");
  }
  base_.finalize();
  n_ = base_.num_nodes();
  base_nodes_ = n_;
  num_edges_ = base_.num_edges();
  touched_.assign(n_, 0);
}

void DeltaGraph::check_node(NodeId u) const {
  if (u >= n_) {
    throw std::invalid_argument("DeltaGraph: node " + std::to_string(u) +
                                " out of range (n=" + std::to_string(n_) +
                                ")");
  }
}

bool DeltaGraph::base_has(NodeId u, NodeId v) const {
  if (u >= base_nodes_) return false;
  const auto list = base_.neighbors(u);
  return std::binary_search(list.begin(), list.end(), v);
}

DeltaGraph::Overlay& DeltaGraph::overlay_for(NodeId u) {
  touched_[u] = 1;
  return overlay_[u];
}

NodeId DeltaGraph::add_node() {
  const auto id = static_cast<NodeId>(n_);
  ++n_;
  touched_.push_back(0);
  return id;
}

int DeltaGraph::apply_half(NodeId u, NodeId v, bool add) {
  Overlay& ov = overlay_for(u);
  if (add) {
    // Re-adding a removed base edge cancels the removal; otherwise the
    // edge is genuinely new and goes to the added list.
    if (base_has(u, v)) {
      if (!sorted_erase(ov.removed, v)) {
        throw std::invalid_argument("DeltaGraph: edge already exists");
      }
      return -1;
    }
    if (!sorted_insert(ov.added, v)) {
      throw std::invalid_argument("DeltaGraph: edge already exists");
    }
    return 1;
  }
  // Removing an overlay-added edge cancels the addition; removing a base
  // edge records a tombstone.
  if (sorted_erase(ov.added, v)) return -1;
  if (!base_has(u, v) || !sorted_insert(ov.removed, v)) {
    throw std::invalid_argument("DeltaGraph: edge does not exist");
  }
  return 1;
}

void DeltaGraph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (u == v) {
    throw std::invalid_argument("DeltaGraph: self-loops not allowed");
  }
  overlay_edits_ = static_cast<std::size_t>(
      static_cast<long>(overlay_edits_) + apply_half(u, v, /*add=*/true) +
      apply_half(v, u, /*add=*/true));
  ++num_edges_;
}

void DeltaGraph::remove_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (u == v) {
    throw std::invalid_argument("DeltaGraph: self-loops not allowed");
  }
  overlay_edits_ = static_cast<std::size_t>(
      static_cast<long>(overlay_edits_) + apply_half(u, v, /*add=*/false) +
      apply_half(v, u, /*add=*/false));
  --num_edges_;
}

void DeltaGraph::apply(const EdgeDelta& delta) {
  for (const auto& [u, v] : delta.removed) remove_edge(u, v);
  for (const auto& [u, v] : delta.added) add_edge(u, v);
}

bool DeltaGraph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  if (!touched_[u]) return base_has(u, v);
  const Overlay& ov = overlay_.find(u)->second;
  if (std::binary_search(ov.added.begin(), ov.added.end(), v)) return true;
  if (!base_has(u, v)) return false;
  return !std::binary_search(ov.removed.begin(), ov.removed.end(), v);
}

std::size_t DeltaGraph::degree(NodeId u) const {
  check_node(u);
  std::size_t deg = u < base_nodes_ ? base_.degree(u) : 0;
  if (touched_[u]) {
    const Overlay& ov = overlay_.find(u)->second;
    deg += ov.added.size();
    deg -= ov.removed.size();
  }
  return deg;
}

std::vector<NodeId> DeltaGraph::neighbors_copy(NodeId u) const {
  std::vector<NodeId> out;
  out.reserve(degree(u));
  for_each_neighbor(u, [&](NodeId v) { out.push_back(v); });
  return out;
}

bool DeltaGraph::compaction_due() const noexcept {
  const auto base_entries = static_cast<double>(base_.flat_neighbors().size());
  const auto threshold = static_cast<std::size_t>(
      compact_fraction_ * base_entries);
  return overlay_edits_ >= std::max(compact_min_edits_, threshold);
}

Graph DeltaGraph::materialize() const {
  Graph g(n_);
  for (NodeId u = 0; u < n_; ++u) {
    for_each_neighbor(u, [&](NodeId v) {
      if (u < v) g.add_edge(u, v);
    });
  }
  g.finalize();
  return g;
}

void DeltaGraph::compact() {
  base_ = materialize();
  base_nodes_ = n_;
  overlay_.clear();
  std::fill(touched_.begin(), touched_.end(), std::uint8_t{0});
  overlay_edits_ = 0;
  ++compactions_;
}

}  // namespace mcds::graph
