#include "graph/metrics.hpp"

#include <algorithm>
#include <limits>

#include "graph/traversal.hpp"

namespace mcds::graph {

GraphMetrics compute_metrics(const Graph& g) {
  GraphMetrics m;
  m.nodes = g.num_nodes();
  m.edges = g.num_edges();
  if (m.nodes == 0) return m;
  m.min_degree = std::numeric_limits<std::size_t>::max();
  std::size_t total = 0;
  for (NodeId u = 0; u < m.nodes; ++u) {
    const std::size_t d = g.degree(u);
    m.min_degree = std::min(m.min_degree, d);
    m.max_degree = std::max(m.max_degree, d);
    total += d;
  }
  m.avg_degree = static_cast<double>(total) / static_cast<double>(m.nodes);
  m.components = connected_components(g).second;
  return m;
}

}  // namespace mcds::graph
