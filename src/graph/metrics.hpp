#pragma once

#include "graph/graph.hpp"

/// \file metrics.hpp
/// Basic topology statistics used by the experiment harness when
/// characterizing generated UDG workloads.

namespace mcds::graph {

/// Aggregate degree/connectivity statistics of a graph.
struct GraphMetrics {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;
  std::size_t components = 0;
};

/// Computes GraphMetrics over \p g.
[[nodiscard]] GraphMetrics compute_metrics(const Graph& g);

}  // namespace mcds::graph
