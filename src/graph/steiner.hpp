#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file steiner.hpp
/// Shortest-path Steiner augmentation: the graph-generic primitive
/// behind several connector phases — given seed nodes, add interior
/// nodes of shortest paths until the seeds induce one component.

namespace mcds::graph {

/// Returns nodes (disjoint from \p seeds) whose addition makes
/// G[seeds ∪ result] connected, by repeatedly joining the first seed's
/// component to the nearest other component along a BFS shortest path.
/// Preconditions: g connected and seeds non-empty; throws
/// std::invalid_argument otherwise (including when unreachable
/// components reveal a disconnected graph).
[[nodiscard]] std::vector<NodeId> shortest_path_augment(
    const Graph& g, const std::vector<NodeId>& seeds);

}  // namespace mcds::graph
