#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

/// \file delta_graph.hpp
/// A mutable overlay over the immutable CSR core. Graph's own mutation
/// path thaws the whole CSR back into build lists on every add_edge —
/// O(n + m) per mutation — which is exactly wrong for streaming churn
/// where each event touches a handful of edges. DeltaGraph keeps a
/// finalized Graph as the base snapshot and layers per-node added /
/// removed neighbor lists on the side. Iteration merges the two in
/// ascending id order, so a traversal over a DeltaGraph visits exactly
/// the sequence a re-finalized CSR would produce (golden traces over
/// either representation agree byte for byte). When the overlay grows
/// past a fraction of the base it is compacted — re-finalized into a
/// fresh CSR — in one O(n + m) pass, amortizing the rebuild over the
/// many events that fit under the threshold.

namespace mcds::graph {

/// An exact set of edge changes: every pair appears with u < v, the
/// added and removed lists are disjoint, and within one event both are
/// lexicographically sorted. Produced by udg::GridIndex per event and
/// consumed by DeltaGraph::apply and the localized repair layer.
struct EdgeDelta {
  std::vector<std::pair<NodeId, NodeId>> added;
  std::vector<std::pair<NodeId, NodeId>> removed;

  void clear() noexcept {
    added.clear();
    removed.clear();
  }
  [[nodiscard]] bool empty() const noexcept {
    return added.empty() && removed.empty();
  }
  /// Canonicalizes an accumulated delta: orients every pair u < v, sorts
  /// both lists, and cancels edges that were added and later removed (or
  /// vice versa) so the result is the *net* change.
  void normalize();
};

/// A graph that accepts O(degree)-cost edge mutations over a frozen CSR
/// snapshot. Node ids are stable; add_node() appends. The overlay keeps
/// removed-lists as subsets of the base adjacency and added-lists
/// disjoint from it, so membership and merged iteration are two binary
/// searches / one two-pointer sweep per node.
class DeltaGraph {
 public:
  DeltaGraph() = default;

  /// Takes ownership of \p base (finalizing it if needed). Compaction
  /// triggers when the overlay holds more than \p compact_fraction of
  /// the base's directed adjacency entries, but never below
  /// \p compact_min_edits (small graphs would otherwise thrash).
  explicit DeltaGraph(Graph base, double compact_fraction = 0.25,
                      std::size_t compact_min_edits = 1024);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Appends an isolated node and returns its id.
  NodeId add_node();

  /// Adds the undirected edge {u, v}. Throws std::invalid_argument on
  /// out-of-range endpoints, self-loops, or an edge that already exists
  /// (deltas are exact; a duplicate signals a caller bug).
  void add_edge(NodeId u, NodeId v);

  /// Removes the undirected edge {u, v}. Throws std::invalid_argument if
  /// the edge is absent.
  void remove_edge(NodeId u, NodeId v);

  /// Applies an exact delta: removals first, then additions.
  void apply(const EdgeDelta& delta);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t degree(NodeId u) const;

  /// Visits the neighbors of \p u in ascending id order — the same
  /// sequence a rebuilt CSR would yield. Untouched nodes iterate the
  /// base span directly (no merge, no hash lookup).
  template <class F>
  void for_each_neighbor(NodeId u, F&& f) const {
    check_node(u);
    std::span<const NodeId> base{};
    if (u < base_nodes_) base = base_.neighbors(u);
    if (!touched_[u]) {
      for (const NodeId v : base) f(v);
      return;
    }
    const Overlay& ov = overlay_.find(u)->second;
    std::size_t bi = 0;
    std::size_t ai = 0;
    std::size_t ri = 0;
    while (true) {
      while (bi < base.size()) {
        while (ri < ov.removed.size() && ov.removed[ri] < base[bi]) ++ri;
        if (ri < ov.removed.size() && ov.removed[ri] == base[bi]) {
          ++bi;
          ++ri;
          continue;
        }
        break;
      }
      const bool has_b = bi < base.size();
      const bool has_a = ai < ov.added.size();
      if (!has_b && !has_a) break;
      // added is disjoint from base \ removed, so no equal case exists.
      if (has_b && (!has_a || base[bi] < ov.added[ai])) {
        f(base[bi]);
        ++bi;
      } else {
        f(ov.added[ai]);
        ++ai;
      }
    }
  }

  /// Neighbors of \p u as a sorted vector (test/debug convenience).
  [[nodiscard]] std::vector<NodeId> neighbors_copy(NodeId u) const;

  /// Directed overlay entries currently held (added + removed, both
  /// directions of every undirected edge counted).
  [[nodiscard]] std::size_t overlay_edits() const noexcept {
    return overlay_edits_;
  }

  /// True when the overlay exceeds the compaction threshold.
  [[nodiscard]] bool compaction_due() const noexcept;

  /// Re-finalizes base ∪ overlay into a fresh CSR snapshot and clears
  /// the overlay. O(n + m).
  void compact();

  /// Number of compactions performed so far.
  [[nodiscard]] std::size_t compactions() const noexcept {
    return compactions_;
  }

  /// A fresh finalized Graph equal to the current topology.
  [[nodiscard]] Graph materialize() const;

  /// The frozen base snapshot (valid until the next compact()).
  [[nodiscard]] const Graph& base() const noexcept { return base_; }

 private:
  struct Overlay {
    std::vector<NodeId> added;    ///< sorted, disjoint from base adjacency
    std::vector<NodeId> removed;  ///< sorted, subset of base adjacency
  };

  void check_node(NodeId u) const;
  [[nodiscard]] bool base_has(NodeId u, NodeId v) const;
  Overlay& overlay_for(NodeId u);
  /// Adds/removes one direction of an edge; returns the edit delta
  /// (+1: overlay grew, -1: an overlay entry cancelled out).
  int apply_half(NodeId u, NodeId v, bool add);

  Graph base_;  ///< finalized snapshot
  std::unordered_map<NodeId, Overlay> overlay_;
  std::vector<std::uint8_t> touched_;  ///< [u] != 0 ⇔ overlay_ has u
  std::size_t n_ = 0;
  std::size_t base_nodes_ = 0;
  std::size_t num_edges_ = 0;
  std::size_t overlay_edits_ = 0;
  std::size_t compactions_ = 0;
  double compact_fraction_ = 0.25;
  std::size_t compact_min_edits_ = 1024;
};

}  // namespace mcds::graph
