#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"

/// \file traversal.hpp
/// BFS/DFS, connectivity and spanning-tree queries. The WAF algorithm's
/// phase 1 consumes the BFS order and BFS tree produced here.

namespace mcds::graph {

/// Marker for "not reached" in parent/level arrays.
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Result of a breadth-first search from a root.
struct BfsResult {
  NodeId root = 0;
  /// Nodes in visit order (root first). Unreachable nodes are absent.
  std::vector<NodeId> order;
  /// parent[v] — BFS-tree parent; kNoNode for the root and unreachables.
  std::vector<NodeId> parent;
  /// level[v] — hop distance from the root; kNoNode if unreachable.
  std::vector<NodeId> level;

  /// Number of nodes reached (== order.size()).
  [[nodiscard]] std::size_t reached() const noexcept { return order.size(); }
};

/// Breadth-first search from \p root; neighbors are visited in increasing
/// id order, making the visit order deterministic.
[[nodiscard]] BfsResult bfs(const Graph& g, NodeId root);

/// Connected-component labels, 0-based, in order of smallest contained
/// node. Returns the label vector and the number of components.
[[nodiscard]] std::pair<std::vector<std::uint32_t>, std::size_t>
connected_components(const Graph& g);

/// True if the whole graph is connected (the empty graph counts as
/// connected, a single node too).
[[nodiscard]] bool is_connected(const Graph& g);

/// Hop distances from \p source to every node (kNoNode if unreachable).
[[nodiscard]] std::vector<NodeId> hop_distances(const Graph& g, NodeId source);

/// Eccentricity-based graph diameter in hops. Exact, O(n*(n+m)).
/// Returns 0 for graphs with <= 1 node; throws std::invalid_argument if
/// the graph is disconnected.
[[nodiscard]] std::size_t diameter_hops(const Graph& g);

/// A shortest path (as a node sequence, inclusive) from \p s to \p t,
/// or an empty vector if unreachable.
[[nodiscard]] std::vector<NodeId> shortest_path(const Graph& g, NodeId s,
                                                NodeId t);

}  // namespace mcds::graph
