#include "graph/small_graph.hpp"

namespace mcds::graph {

template class BasicSmallGraph<Mask>;
template class BasicSmallGraph<Mask128>;

}  // namespace mcds::graph
