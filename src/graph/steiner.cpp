#include "graph/steiner.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"

namespace mcds::graph {

std::vector<NodeId> shortest_path_augment(
    const Graph& g, const std::vector<NodeId>& seeds) {
  if (seeds.empty()) {
    throw std::invalid_argument("shortest_path_augment: empty seeds");
  }
  const std::size_t n = g.num_nodes();
  std::vector<bool> member(n, false);
  std::vector<NodeId> members = seeds;
  for (const NodeId v : seeds) {
    if (v >= n) {
      throw std::invalid_argument("shortest_path_augment: bad seed");
    }
    member[v] = true;
  }

  std::vector<NodeId> connectors;
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  while (true) {
    const auto [labels, q] = subset_components(g, members);
    if (q <= 1) break;
    std::vector<std::uint32_t> comp(n, kUnset);
    for (std::size_t i = 0; i < members.size(); ++i) {
      comp[members[i]] = labels[i];
    }

    // Multi-source BFS from component 0 until another component is hit.
    std::vector<NodeId> parent(n, kNoNode);
    std::vector<bool> visited(n, false);
    std::queue<NodeId> queue;
    for (const NodeId v : members) {
      if (comp[v] == 0) {
        visited[v] = true;
        queue.push(v);
      }
    }
    NodeId hit = kNoNode;
    while (!queue.empty() && hit == kNoNode) {
      const NodeId u = queue.front();
      queue.pop();
      for (const NodeId v : g.neighbors(u)) {
        if (visited[v]) continue;
        visited[v] = true;
        parent[v] = u;
        if (comp[v] != kUnset && comp[v] != 0) {
          hit = v;
          break;
        }
        queue.push(v);
      }
    }
    if (hit == kNoNode) {
      throw std::invalid_argument(
          "shortest_path_augment: graph is disconnected");
    }
    // Add the interior nodes of the found path as connectors.
    for (NodeId v = parent[hit]; v != kNoNode && !member[v];
         v = parent[v]) {
      member[v] = true;
      members.push_back(v);
      connectors.push_back(v);
    }
  }
  return connectors;
}

}  // namespace mcds::graph
