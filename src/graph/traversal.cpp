#include "graph/traversal.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mcds::graph {

BfsResult bfs(const Graph& g, NodeId root) {
  if (root >= g.num_nodes()) {
    throw std::invalid_argument("bfs: root out of range");
  }
  const FrozenGraph fg(g);
  BfsResult r;
  r.root = root;
  r.parent.assign(fg.num_nodes(), kNoNode);
  r.level.assign(fg.num_nodes(), kNoNode);
  r.order.reserve(fg.num_nodes());

  std::queue<NodeId> q;
  q.push(root);
  r.level[root] = 0;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    r.order.push_back(u);
    for (const NodeId v : fg.neighbors(u)) {
      if (r.level[v] == kNoNode) {
        r.level[v] = r.level[u] + 1;
        r.parent[v] = u;
        q.push(v);
      }
    }
  }
  return r;
}

std::pair<std::vector<std::uint32_t>, std::size_t> connected_components(
    const Graph& g) {
  const FrozenGraph fg(g);
  const std::size_t n = fg.num_nodes();
  std::vector<std::uint32_t> label(n, std::numeric_limits<std::uint32_t>::max());
  std::size_t count = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != std::numeric_limits<std::uint32_t>::max()) continue;
    const auto lbl = static_cast<std::uint32_t>(count++);
    stack.push_back(s);
    label[s] = lbl;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId v : fg.neighbors(u)) {
        if (label[v] == std::numeric_limits<std::uint32_t>::max()) {
          label[v] = lbl;
          stack.push_back(v);
        }
      }
    }
  }
  return {std::move(label), count};
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  return bfs(g, 0).reached() == g.num_nodes();
}

std::vector<NodeId> hop_distances(const Graph& g, NodeId source) {
  return bfs(g, source).level;
}

std::size_t diameter_hops(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n <= 1) return 0;
  std::size_t best = 0;
  for (NodeId s = 0; s < n; ++s) {
    const auto lv = hop_distances(g, s);
    for (const NodeId d : lv) {
      if (d == kNoNode) {
        throw std::invalid_argument("diameter_hops: graph is disconnected");
      }
      best = std::max<std::size_t>(best, d);
    }
  }
  return best;
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId s, NodeId t) {
  const BfsResult r = bfs(g, s);
  if (t >= g.num_nodes()) {
    throw std::invalid_argument("shortest_path: target out of range");
  }
  if (r.level[t] == kNoNode) return {};
  std::vector<NodeId> path;
  for (NodeId v = t; v != kNoNode; v = r.parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace mcds::graph
