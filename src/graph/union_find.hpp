#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

/// \file union_find.hpp
/// Disjoint-set union with path halving and union by size. Used by the
/// greedy-connector phase (Section IV) to track the components of
/// G[I ∪ C] incrementally.

namespace mcds::graph {

/// Disjoint-set forest over elements 0..n-1.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), count_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  /// Representative of the set containing \p x (with path halving).
  [[nodiscard]] std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing \p a and \p b. Returns true if they were
  /// previously distinct.
  bool unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --count_;
    return true;
  }

  /// True if \p a and \p b are in the same set.
  [[nodiscard]] bool same(std::uint32_t a, std::uint32_t b) noexcept {
    return find(a) == find(b);
  }

  /// Size of the set containing \p x.
  [[nodiscard]] std::size_t set_size(std::uint32_t x) noexcept {
    return size_[find(x)];
  }

  /// Number of disjoint sets over the whole universe.
  [[nodiscard]] std::size_t num_sets() const noexcept { return count_; }

  /// Number of elements in the universe.
  [[nodiscard]] std::size_t universe_size() const noexcept {
    return parent_.size();
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t count_;
};

}  // namespace mcds::graph
