#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "graph/mask128.hpp"

/// \file small_graph.hpp
/// Bitset representation of small graphs, used by the exact solvers
/// (α, γ, γ_c) that validate the paper's bounds on random UDGs. All
/// vertex subsets are masks: std::uint64_t for up to 64 nodes
/// (SmallGraph) or Mask128 for up to 128 (SmallGraph128).

namespace mcds::graph {

/// Vertex-subset mask for SmallGraph (the 64-node variant).
using Mask = std::uint64_t;

/// Number of set bits.
[[nodiscard]] constexpr int popcount(Mask m) noexcept {
  return std::popcount(m);
}

/// Index of the lowest set bit. Precondition: m != 0.
[[nodiscard]] constexpr NodeId lowest_bit(Mask m) noexcept {
  return static_cast<NodeId>(std::countr_zero(m));
}

/// Capacity (in nodes) of a mask type.
template <class M>
inline constexpr std::size_t kMaskBits = 0;
template <>
inline constexpr std::size_t kMaskBits<Mask> = 64;
template <>
inline constexpr std::size_t kMaskBits<Mask128> = 128;

/// Graph over at most kMaskBits<M> nodes with O(1) neighborhood masks.
template <class M>
class BasicSmallGraph {
 public:
  using mask_type = M;

  /// Builds from a general Graph. Throws std::invalid_argument if the
  /// graph exceeds the mask capacity.
  explicit BasicSmallGraph(const Graph& g) : BasicSmallGraph(g.num_nodes()) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (const NodeId v : g.neighbors(u)) {
        if (u < v) add_edge(u, v);
      }
    }
  }

  /// Creates an edgeless small graph with \p n nodes.
  explicit BasicSmallGraph(std::size_t n) : n_(n), adj_(n, M{0}) {
    if (n > kMaskBits<M>) {
      throw std::invalid_argument("BasicSmallGraph: too many nodes");
    }
  }

  /// Single-vertex mask {v}.
  [[nodiscard]] static constexpr M bit(NodeId v) noexcept {
    return M{1} << v;
  }

  /// Adds the undirected edge {u, v}.
  void add_edge(NodeId u, NodeId v) {
    if (u >= n_ || v >= n_) {
      throw std::invalid_argument("BasicSmallGraph: node out of range");
    }
    if (u == v) throw std::invalid_argument("BasicSmallGraph: self-loop");
    adj_[u] |= bit(v);
    adj_[v] |= bit(u);
  }

  /// Number of nodes.
  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }

  /// Mask of all nodes.
  [[nodiscard]] M all() const noexcept {
    return n_ == kMaskBits<M> ? ~M{0} : bit(static_cast<NodeId>(n_)) - M{1};
  }

  /// Open neighborhood N(u) as a mask.
  [[nodiscard]] M neighbors(NodeId u) const { return adj_.at(u); }

  /// Closed neighborhood N[u] = N(u) ∪ {u}.
  [[nodiscard]] M closed_neighbors(NodeId u) const {
    return adj_.at(u) | bit(u);
  }

  /// Union of closed neighborhoods over the subset \p s — the set of
  /// nodes dominated by \p s.
  [[nodiscard]] M dominated_by(M s) const noexcept {
    M dom = s & all();
    M rest = dom;
    while (!(rest == M{0})) {
      const NodeId u = static_cast<NodeId>(lowest_bit(rest));
      rest &= rest - M{1};
      dom |= adj_[u];
    }
    return dom;
  }

  /// True if subset \p s dominates all nodes.
  [[nodiscard]] bool is_dominating(M s) const noexcept {
    return dominated_by(s) == all();
  }

  /// The component of the induced subgraph G[s] containing \p u
  /// (u must be in s).
  [[nodiscard]] M component_of(M s, NodeId u) const noexcept {
    M comp = bit(u);
    M frontier = comp;
    while (!(frontier == M{0})) {
      M next{0};
      M f = frontier;
      while (!(f == M{0})) {
        const NodeId v = static_cast<NodeId>(lowest_bit(f));
        f &= f - M{1};
        next |= adj_[v] & s;
      }
      frontier = next & ~comp;
      comp |= frontier;
    }
    return comp;
  }

  /// True if the subgraph induced by \p s is connected (empty and
  /// singleton subsets count as connected).
  [[nodiscard]] bool is_connected(M s) const noexcept {
    s &= all();
    if (s == M{0}) return true;
    return component_of(s, static_cast<NodeId>(lowest_bit(s))) == s;
  }

  /// Number of connected components of the subgraph induced by \p s.
  [[nodiscard]] std::size_t count_components(M s) const noexcept {
    s &= all();
    std::size_t count = 0;
    while (!(s == M{0})) {
      const M comp = component_of(s, static_cast<NodeId>(lowest_bit(s)));
      s &= ~comp;
      ++count;
    }
    return count;
  }

  /// True if \p s is an independent set.
  [[nodiscard]] bool is_independent(M s) const noexcept {
    M rest = s & all();
    while (!(rest == M{0})) {
      const NodeId u = static_cast<NodeId>(lowest_bit(rest));
      rest &= rest - M{1};
      if (!((adj_[u] & s) == M{0})) return false;
    }
    return true;
  }

 private:
  std::size_t n_ = 0;
  std::vector<M> adj_;
};

/// The 64-node variant used throughout the library and tests.
using SmallGraph = BasicSmallGraph<Mask>;

/// The 128-node variant for larger exact validation runs.
using SmallGraph128 = BasicSmallGraph<Mask128>;

extern template class BasicSmallGraph<Mask>;
extern template class BasicSmallGraph<Mask128>;

}  // namespace mcds::graph
