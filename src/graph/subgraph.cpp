#include "graph/subgraph.hpp"

#include <limits>
#include <stdexcept>

namespace mcds::graph {

namespace {
constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();

// position[v] = index of v within `subset`, kUnset if absent.
std::vector<std::uint32_t> position_map(const Graph& g,
                                        std::span<const NodeId> subset) {
  std::vector<std::uint32_t> pos(g.num_nodes(), kUnset);
  for (std::uint32_t i = 0; i < subset.size(); ++i) {
    const NodeId v = subset[i];
    if (v >= g.num_nodes()) {
      throw std::invalid_argument("subset node out of range");
    }
    if (pos[v] != kUnset) {
      throw std::invalid_argument("subset contains duplicate node");
    }
    pos[v] = i;
  }
  return pos;
}
}  // namespace

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const NodeId> nodes) {
  const auto pos = position_map(g, nodes);
  const FrozenGraph fg(g);
  InducedSubgraph out;
  out.mapping.assign(nodes.begin(), nodes.end());
  out.graph = Graph(nodes.size());
  for (std::uint32_t i = 0; i < nodes.size(); ++i) {
    for (const NodeId v : fg.neighbors(nodes[i])) {
      const std::uint32_t j = pos[v];
      if (j != kUnset && i < j) out.graph.add_edge(i, j);
    }
  }
  out.graph.finalize();
  return out;
}

std::pair<std::vector<std::uint32_t>, std::size_t> subset_components(
    const Graph& g, std::span<const NodeId> subset) {
  const auto pos = position_map(g, subset);
  const FrozenGraph fg(g);
  std::vector<std::uint32_t> label(subset.size(), kUnset);
  std::size_t count = 0;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 0; i < subset.size(); ++i) {
    if (label[i] != kUnset) continue;
    const auto lbl = static_cast<std::uint32_t>(count++);
    label[i] = lbl;
    stack.push_back(i);
    while (!stack.empty()) {
      const std::uint32_t cur = stack.back();
      stack.pop_back();
      for (const NodeId v : fg.neighbors(subset[cur])) {
        const std::uint32_t j = pos[v];
        if (j != kUnset && label[j] == kUnset) {
          label[j] = lbl;
          stack.push_back(j);
        }
      }
    }
  }
  return {std::move(label), count};
}

std::size_t count_components_subset(const Graph& g,
                                    std::span<const NodeId> subset) {
  return subset_components(g, subset).second;
}

bool is_connected_subset(const Graph& g, std::span<const NodeId> subset) {
  if (subset.size() <= 1) return true;
  return count_components_subset(g, subset) == 1;
}

}  // namespace mcds::graph
