#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// \file graph.hpp
/// Simple undirected graph with adjacency lists. This is the communication
/// topology G = (V, E) on which every CDS algorithm in the library runs.

namespace mcds::graph {

/// Node identifier: dense 0-based index.
using NodeId = std::uint32_t;

/// An undirected simple graph over nodes 0..n-1.
///
/// Edges are stored in per-node adjacency lists. Call finalize() (or use
/// the edge-list constructor) before running queries that require sorted
/// adjacency (has_edge); the algorithms in this library all operate on
/// finalized graphs.
class Graph {
 public:
  Graph() = default;

  /// Creates an edgeless graph with \p n nodes.
  explicit Graph(std::size_t n) : adj_(n) {}

  /// Creates a graph from an explicit edge list.
  Graph(std::size_t n, std::span<const std::pair<NodeId, NodeId>> edges);

  /// Number of nodes.
  [[nodiscard]] std::size_t num_nodes() const noexcept { return adj_.size(); }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds the undirected edge {u, v}. Throws std::invalid_argument for
  /// out-of-range endpoints or self-loops. Duplicate edges are detected at
  /// finalize() time and removed (counted once).
  void add_edge(NodeId u, NodeId v);

  /// Sorts adjacency lists and removes duplicate edges. Idempotent.
  void finalize();

  /// Neighbors of \p u in increasing order (after finalize()).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    return adj_.at(u);
  }

  /// Degree of \p u.
  [[nodiscard]] std::size_t degree(NodeId u) const { return adj_.at(u).size(); }

  /// True if the edge {u, v} exists. O(log deg) after finalize().
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// True if finalize() has been called since the last mutation.
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// All edges as (u, v) with u < v, lexicographic order.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  void check_node(NodeId u) const;

  std::vector<std::vector<NodeId>> adj_;
  std::size_t num_edges_ = 0;
  bool finalized_ = true;  // an edgeless graph is trivially finalized
};

}  // namespace mcds::graph
