#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// \file graph.hpp
/// Undirected graph storage. This is the communication topology
/// G = (V, E) on which every CDS algorithm in the library runs.
///
/// Storage model: Graph is built through add_edge() into per-node build
/// lists, then finalize() compacts it into a CSR (compressed sparse row)
/// layout — one flat `offsets_` array of n+1 list boundaries and one
/// flat `neighbors_` array holding every adjacency consecutively. All
/// queries after finalize() read the flat arrays, so a neighborhood scan
/// is a single contiguous range with no per-node heap indirection.
/// FrozenGraph is the zero-cost view of that layout the hot paths
/// consume; NestedGraph retains the historical vector-of-vectors
/// representation for differential tests and locality benchmarks.

namespace mcds::graph {

/// Node identifier: dense 0-based index.
using NodeId = std::uint32_t;

/// An undirected simple graph over nodes 0..n-1.
///
/// Edges are staged by add_edge() and compacted by finalize() (the
/// edge-list constructor finalizes for you). Queries that require sorted
/// adjacency (has_edge) demand a finalized graph; the algorithms in this
/// library all operate on finalized graphs. Mutating a finalized graph
/// thaws it back into build lists transparently; call finalize() again
/// before handing it to an algorithm.
class Graph {
 public:
  Graph() = default;

  /// Creates an edgeless graph with \p n nodes.
  explicit Graph(std::size_t n) : n_(n), offsets_(n + 1, 0) {}

  /// Creates a graph from an explicit edge list.
  Graph(std::size_t n, std::span<const std::pair<NodeId, NodeId>> edges);

  /// Number of nodes.
  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds the undirected edge {u, v}. Throws std::invalid_argument for
  /// out-of-range endpoints or self-loops. Duplicate edges are detected at
  /// finalize() time and removed (counted once).
  void add_edge(NodeId u, NodeId v);

  /// Sorts adjacency, removes duplicate edges and compacts the graph
  /// into the flat CSR arrays. Idempotent.
  void finalize();

  /// Neighbors of \p u in increasing order (after finalize()). Before
  /// finalize() the staged, unsorted build list is returned.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    if (finalized_) {
      check_node(u);
      return {neighbors_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
    }
    return build_adj_.at(u);
  }

  /// Degree of \p u.
  [[nodiscard]] std::size_t degree(NodeId u) const {
    return neighbors(u).size();
  }

  /// True if the edge {u, v} exists. O(log deg) after finalize().
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// True if finalize() has been called since the last mutation.
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// All edges as (u, v) with u < v, lexicographic order.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// The CSR row-boundary array (size n+1, after finalize()).
  [[nodiscard]] std::span<const std::uint32_t> offsets() const noexcept {
    return offsets_;
  }

  /// The flat CSR adjacency array (size 2m, after finalize()).
  [[nodiscard]] std::span<const NodeId> flat_neighbors() const noexcept {
    return neighbors_;
  }

 private:
  friend class FrozenGraph;

  void check_node(NodeId u) const;
  /// Re-expands the CSR arrays into build lists so add_edge can mutate a
  /// finalized graph.
  void thaw();

  std::size_t n_ = 0;
  /// Staging adjacency, only populated between add_edge and finalize.
  std::vector<std::vector<NodeId>> build_adj_;
  /// CSR layout: neighbors of u are neighbors_[offsets_[u] .. offsets_[u+1]).
  std::vector<std::uint32_t> offsets_ = {0};
  std::vector<NodeId> neighbors_;
  std::size_t num_edges_ = 0;
  bool finalized_ = true;  // an edgeless graph is trivially finalized
};

/// A non-owning, bounds-check-free view of a finalized Graph's CSR
/// arrays — three words, passed by value. This is what the hot loops
/// (MIS selection, connector gain scans, BFS, validation sweeps)
/// iterate: `for (NodeId v : fg.neighbors(u))` compiles to a scan over
/// one contiguous range. The viewed Graph must outlive the view.
class FrozenGraph {
 public:
  /// Implicit on purpose: algorithms take `const Graph&` at the API
  /// boundary and drop to the frozen view internally. Throws
  /// std::logic_error if \p g is not finalized.
  FrozenGraph(const Graph& g);  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return {neighbors_ + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }

  /// True if the edge {u, v} exists. O(log deg).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

 private:
  const std::uint32_t* offsets_ = nullptr;
  const NodeId* neighbors_ = nullptr;
  std::size_t n_ = 0;
};

/// The pre-CSR adjacency representation: one separately allocated
/// std::vector per node. Retained as the differential-testing oracle for
/// the CSR layout and as the baseline side of the locality benchmarks
/// (BM_GreedyConnectorsNested). The constructor replays the edge
/// insertions push_back-by-push_back, reproducing the interleaved growth
/// allocations a Graph used to hold after build + finalize — i.e. the
/// pointer-chasing layout the CSR conversion removes.
class NestedGraph {
 public:
  explicit NestedGraph(const Graph& g);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return adj_.size(); }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return adj_[u];
  }

  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return adj_[u].size();
  }

 private:
  std::vector<std::vector<NodeId>> adj_;
};

/// Three-word by-value view of a NestedGraph, mirroring FrozenGraph's
/// interface so templated engines can be instantiated over either
/// storage layout. The viewed NestedGraph must outlive the view.
class NestedView {
 public:
  explicit NestedView(const NestedGraph& g) noexcept : g_(&g) {}

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return g_->num_nodes();
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return g_->neighbors(u);
  }
  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return g_->degree(u);
  }

 private:
  const NestedGraph* g_;
};

}  // namespace mcds::graph
