#include "graph/graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace mcds::graph {

Graph::Graph(std::size_t n, std::span<const std::pair<NodeId, NodeId>> edges)
    : n_(n), offsets_(n + 1, 0) {
  for (const auto& [u, v] : edges) add_edge(u, v);
  finalize();
}

void Graph::check_node(NodeId u) const {
  if (u >= n_) {
    throw std::invalid_argument("Graph: node " + std::to_string(u) +
                                " out of range (n=" + std::to_string(n_) +
                                ")");
  }
}

void Graph::thaw() {
  // Stage into a local so a mid-loop allocation failure leaves the graph
  // exactly as it was (still finalized, CSR intact); only the noexcept
  // moves below commit the transition.
  std::vector<std::vector<NodeId>> staged(n_);
  for (NodeId u = 0; u < n_; ++u) {
    const auto list = std::span<const NodeId>{
        neighbors_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
    staged[u].assign(list.begin(), list.end());
  }
  build_adj_ = std::move(staged);
  neighbors_.clear();
  finalized_ = false;
}

void Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("Graph: self-loops not allowed");
  if (finalized_) thaw();
  auto& fwd = build_adj_[u];
  auto& rev = build_adj_[v];
  // Pre-grow both endpoint lists (geometrically, to keep push_back
  // amortized O(1)) so the two inserts below cannot throw: an edge is
  // recorded in both lists or in neither, never half-way.
  if (fwd.size() == fwd.capacity()) {
    fwd.reserve(fwd.empty() ? 4 : fwd.capacity() * 2);
  }
  if (rev.size() == rev.capacity()) {
    rev.reserve(rev.empty() ? 4 : rev.capacity() * 2);
  }
  fwd.push_back(v);
  rev.push_back(u);
}

void Graph::finalize() {
  if (finalized_) return;
  num_edges_ = 0;
  std::size_t total = 0;
  for (auto& list : build_adj_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    total += list.size();
  }
  if (total > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("Graph::finalize: adjacency exceeds 32-bit CSR");
  }
  offsets_.assign(n_ + 1, 0);
  neighbors_.clear();
  neighbors_.reserve(total);
  for (NodeId u = 0; u < n_; ++u) {
    offsets_[u] = static_cast<std::uint32_t>(neighbors_.size());
    neighbors_.insert(neighbors_.end(), build_adj_[u].begin(),
                      build_adj_[u].end());
  }
  offsets_[n_] = static_cast<std::uint32_t>(neighbors_.size());
  num_edges_ = total / 2;
  build_adj_.clear();
  build_adj_.shrink_to_fit();
  finalized_ = true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  if (!finalized_) {
    throw std::logic_error("Graph::has_edge requires a finalized graph");
  }
  const auto list = neighbors(u);
  return std::binary_search(list.begin(), list.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < n_; ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

FrozenGraph::FrozenGraph(const Graph& g)
    : offsets_(g.offsets_.data()),
      neighbors_(g.neighbors_.data()),
      n_(g.n_) {
  if (!g.finalized()) {
    throw std::logic_error("FrozenGraph: graph must be finalized");
  }
}

bool FrozenGraph::has_edge(NodeId u, NodeId v) const noexcept {
  const auto list = neighbors(u);
  return std::binary_search(list.begin(), list.end(), v);
}

NestedGraph::NestedGraph(const Graph& g) : adj_(g.num_nodes()) {
  if (!g.finalized()) {
    throw std::logic_error("NestedGraph: graph must be finalized");
  }
  // Replay every edge as two push_backs, interleaved across endpoint
  // lists exactly like the historical build path — the resulting
  // growth-doubling allocations are the scattered layout the CSR
  // comparison benchmarks measure against. Per-list order ends up
  // sorted afterwards, matching a finalized graph's query contract.
  for (const auto& [u, v] : g.edges()) {
    adj_[u].push_back(v);
    adj_[v].push_back(u);
  }
  for (auto& list : adj_) std::sort(list.begin(), list.end());
}

}  // namespace mcds::graph
