#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mcds::graph {

Graph::Graph(std::size_t n, std::span<const std::pair<NodeId, NodeId>> edges)
    : adj_(n) {
  for (const auto& [u, v] : edges) add_edge(u, v);
  finalize();
}

void Graph::check_node(NodeId u) const {
  if (u >= adj_.size()) {
    throw std::invalid_argument("Graph: node " + std::to_string(u) +
                                " out of range (n=" +
                                std::to_string(adj_.size()) + ")");
  }
}

void Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("Graph: self-loops not allowed");
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  finalized_ = false;
}

void Graph::finalize() {
  if (finalized_) return;
  num_edges_ = 0;
  for (auto& list : adj_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    num_edges_ += list.size();
  }
  num_edges_ /= 2;
  finalized_ = true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  if (!finalized_) {
    throw std::logic_error("Graph::has_edge requires a finalized graph");
  }
  const auto& list = adj_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (const NodeId v : adj_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

}  // namespace mcds::graph
