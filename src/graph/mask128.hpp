#pragma once

#include <bit>
#include <cstdint>

/// \file mask128.hpp
/// A 128-bit vertex-subset mask, enabling the exact solvers to handle
/// graphs with up to 128 nodes. Supports exactly the operations the
/// branch-and-bound code uses on std::uint64_t masks: bitwise logic,
/// shifts, subtraction (for the x & (x-1) lowest-bit-clear idiom),
/// popcount and lowest-bit queries.

namespace mcds::graph {

/// 128-bit unsigned mask (lo = bits 0..63, hi = bits 64..127).
struct Mask128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  constexpr Mask128() = default;
  /// Implicit from uint64 so `Mask128 m = 1` and comparisons with
  /// integer literals mirror the built-in mask type.
  constexpr Mask128(std::uint64_t value) noexcept : lo(value) {}  // NOLINT
  constexpr Mask128(std::uint64_t low, std::uint64_t high) noexcept
      : lo(low), hi(high) {}

  constexpr bool operator==(const Mask128&) const = default;

  constexpr Mask128 operator&(Mask128 o) const noexcept {
    return {lo & o.lo, hi & o.hi};
  }
  constexpr Mask128 operator|(Mask128 o) const noexcept {
    return {lo | o.lo, hi | o.hi};
  }
  constexpr Mask128 operator^(Mask128 o) const noexcept {
    return {lo ^ o.lo, hi ^ o.hi};
  }
  constexpr Mask128 operator~() const noexcept { return {~lo, ~hi}; }

  constexpr Mask128& operator&=(Mask128 o) noexcept {
    lo &= o.lo;
    hi &= o.hi;
    return *this;
  }
  constexpr Mask128& operator|=(Mask128 o) noexcept {
    lo |= o.lo;
    hi |= o.hi;
    return *this;
  }
  constexpr Mask128& operator^=(Mask128 o) noexcept {
    lo ^= o.lo;
    hi ^= o.hi;
    return *this;
  }

  constexpr Mask128 operator<<(unsigned k) const noexcept {
    if (k == 0) return *this;
    if (k >= 128) return {};
    if (k >= 64) return {0, lo << (k - 64)};
    return {lo << k, (hi << k) | (lo >> (64 - k))};
  }

  constexpr Mask128 operator>>(unsigned k) const noexcept {
    if (k == 0) return *this;
    if (k >= 128) return {};
    if (k >= 64) return {hi >> (k - 64), 0};
    return {(lo >> k) | (hi << (64 - k)), hi >> k};
  }

  /// Subtraction with borrow — used only as `m - 1` in the
  /// clear-lowest-set-bit idiom, but implemented generally.
  constexpr Mask128 operator-(Mask128 o) const noexcept {
    const std::uint64_t new_lo = lo - o.lo;
    const std::uint64_t borrow = lo < o.lo ? 1 : 0;
    return {new_lo, hi - o.hi - borrow};
  }
};

/// Number of set bits.
[[nodiscard]] constexpr int popcount(Mask128 m) noexcept {
  return std::popcount(m.lo) + std::popcount(m.hi);
}

/// Index of the lowest set bit. Precondition: m != 0.
[[nodiscard]] constexpr std::uint32_t lowest_bit(Mask128 m) noexcept {
  return m.lo != 0
             ? static_cast<std::uint32_t>(std::countr_zero(m.lo))
             : static_cast<std::uint32_t>(64 + std::countr_zero(m.hi));
}

}  // namespace mcds::graph
