#include "core/repair.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/steiner.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"

namespace mcds::core {

namespace {

// Shared by repair_cds / reconnect_cds: prune dead members (counting
// them) and, if nothing survived, seed from the max-degree node.
void prune_and_seed(const Graph& g, const std::vector<NodeId>& old_cds,
                    std::vector<bool>& in_set, std::vector<NodeId>& members,
                    RepairResult& out) {
  const std::size_t n = g.num_nodes();
  for (const NodeId v : old_cds) {
    if (v >= n) {
      ++out.dropped;  // failed / departed node
      continue;
    }
    if (!in_set[v]) {
      in_set[v] = true;
      members.push_back(v);
      ++out.kept;
    }
  }
  if (members.empty()) {
    NodeId seed = 0;
    for (NodeId v = 1; v < n; ++v) {
      if (g.degree(v) > g.degree(seed)) seed = v;
    }
    in_set[seed] = true;
    members.push_back(seed);
    ++out.added;
  }
}

// Step 2 of repair — restore connectivity. Prefer positive-gain
// connectors (cheap local merges); when none exists, bridge the nearest
// pair of components along a shortest path.
void restore_connectivity(const Graph& g, std::vector<bool>& in_set,
                          std::vector<NodeId>& members, RepairResult& out) {
  const std::size_t n = g.num_nodes();
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> comp(n), seen(n);
  while (true) {
    const auto [labels, q] = graph::subset_components(g, members);
    if (q <= 1) break;
    std::fill(comp.begin(), comp.end(), kUnset);
    std::fill(seen.begin(), seen.end(), kUnset);
    for (std::size_t i = 0; i < members.size(); ++i) {
      comp[members[i]] = labels[i];
    }
    NodeId best = graph::kNoNode;
    std::size_t best_gain = 1;  // require gain >= 1
    for (NodeId w = 0; w < n; ++w) {
      if (in_set[w]) continue;
      std::size_t distinct = 0;
      for (const NodeId v : g.neighbors(w)) {
        const std::uint32_t c = comp[v];
        if (c != kUnset && seen[c] != w) {
          seen[c] = w;
          ++distinct;
        }
      }
      if (distinct >= 2 && distinct - 1 >= best_gain) {
        if (distinct - 1 > best_gain || best == graph::kNoNode) {
          best = w;
          best_gain = distinct - 1;
        }
      }
    }
    if (best != graph::kNoNode) {
      in_set[best] = true;
      members.push_back(best);
      ++out.added;
      continue;
    }
    // No single node merges two components: fall back to path bridging
    // (adds every interior node of the chosen shortest path at once).
    const auto bridge = graph::shortest_path_augment(g, members);
    for (const NodeId v : bridge) {
      in_set[v] = true;
      members.push_back(v);
      ++out.added;
    }
  }
}

}  // namespace

RepairResult repair_cds(const Graph& g, const std::vector<NodeId>& old_cds) {
  const std::size_t n = g.num_nodes();
  if (n == 0) throw std::invalid_argument("repair_cds: empty graph");
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("repair_cds: graph must be connected");
  }

  RepairResult out;
  std::vector<bool> in_set(n, false);
  std::vector<NodeId> members;
  prune_and_seed(g, old_cds, in_set, members, out);

  // Step 1 — restore domination. For each uncovered node pick the
  // member of its closed neighborhood covering the most uncovered
  // nodes (a local decision, as a real deployment would make).
  std::vector<bool> dominated(n, false);
  const auto mark = [&](NodeId v) {
    dominated[v] = true;
    for (const NodeId w : g.neighbors(v)) dominated[w] = true;
  };
  for (const NodeId v : members) mark(v);
  for (NodeId v = 0; v < n; ++v) {
    if (dominated[v]) continue;
    NodeId best = v;
    std::size_t best_cover = 0;
    const auto coverage = [&](NodeId w) {
      std::size_t c = dominated[w] ? 0 : 1;
      for (const NodeId x : g.neighbors(w)) {
        if (!dominated[x]) ++c;
      }
      return c;
    };
    best_cover = coverage(v);
    for (const NodeId w : g.neighbors(v)) {
      const std::size_t c = coverage(w);
      if (c > best_cover || (c == best_cover && w < best)) {
        best = w;
        best_cover = c;
      }
    }
    in_set[best] = true;
    members.push_back(best);
    ++out.added;
    mark(best);
  }

  // Step 2 — restore connectivity.
  restore_connectivity(g, in_set, members, out);

  out.cds = members;
  std::sort(out.cds.begin(), out.cds.end());
  return out;
}

namespace {

// Shared frame of the *_components variants: fast-path a connected
// topology straight to `fix`, otherwise run `fix` on every component's
// induced subgraph and merge the per-component results.
template <typename Fix>
RepairResult per_component(const char* what, const Graph& g,
                           const std::vector<NodeId>& old_cds, Fix fix) {
  const std::size_t n = g.num_nodes();
  if (n == 0) throw std::invalid_argument(std::string(what) + ": empty graph");

  const auto [comp, num_comps] = graph::connected_components(g);
  if (num_comps <= 1) return fix(g, old_cds);

  RepairResult out;
  std::vector<std::vector<NodeId>> nodes_of(num_comps);
  for (NodeId v = 0; v < n; ++v) nodes_of[comp[v]].push_back(v);
  std::vector<std::vector<NodeId>> members_of(num_comps);
  for (const NodeId v : old_cds) {
    if (v >= n) {
      ++out.dropped;  // failed / departed node
      continue;
    }
    members_of[comp[v]].push_back(v);
  }

  for (std::size_t c = 0; c < num_comps; ++c) {
    const auto sub = graph::induced_subgraph(g, nodes_of[c]);
    std::vector<NodeId> to_sub(n, graph::kNoNode);
    for (NodeId i = 0; i < sub.mapping.size(); ++i) to_sub[sub.mapping[i]] = i;
    std::vector<NodeId> members_sub;
    members_sub.reserve(members_of[c].size());
    for (const NodeId v : members_of[c]) members_sub.push_back(to_sub[v]);

    const RepairResult r = fix(sub.graph, members_sub);
    for (const NodeId i : r.cds) out.cds.push_back(sub.mapping[i]);
    out.kept += r.kept;
    out.added += r.added;
    out.dropped += r.dropped;
  }
  std::sort(out.cds.begin(), out.cds.end());
  return out;
}

}  // namespace

RepairResult repair_cds_components(const Graph& g,
                                   const std::vector<NodeId>& old_cds) {
  return per_component("repair_cds_components", g, old_cds, repair_cds);
}

RepairResult reconnect_cds_components(const Graph& g,
                                      const std::vector<NodeId>& old_cds) {
  return per_component("reconnect_cds_components", g, old_cds, reconnect_cds);
}

RepairResult reconnect_cds(const Graph& g,
                           const std::vector<NodeId>& old_cds) {
  const std::size_t n = g.num_nodes();
  if (n == 0) throw std::invalid_argument("reconnect_cds: empty graph");
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("reconnect_cds: graph must be connected");
  }

  RepairResult out;
  std::vector<bool> in_set(n, false);
  std::vector<NodeId> members;
  prune_and_seed(g, old_cds, in_set, members, out);
  restore_connectivity(g, in_set, members, out);

  out.cds = members;
  std::sort(out.cds.begin(), out.cds.end());
  return out;
}

}  // namespace mcds::core
