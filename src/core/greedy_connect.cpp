#include "core/greedy_connect.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/connector_engine.hpp"
#include "graph/subgraph.hpp"
#include "obs/timer.hpp"

namespace mcds::core {

std::pair<std::vector<NodeId>, std::vector<GreedyStep>> greedy_connectors(
    const Graph& g, const std::vector<NodeId>& mis, const obs::Obs& obs) {
  obs::ScopedTimer timer(obs, "greedy.phase2_gain_loop");
  ConnectorEngine engine(g, mis, obs);
  std::vector<NodeId> connectors;
  std::vector<GreedyStep> steps;
  while (!engine.done()) {
    const GreedyStep step = engine.select_next();
    connectors.push_back(step.node);
    steps.push_back(step);
  }
  if (obs.metrics) {
    obs.metrics->counter("greedy.connectors").add(connectors.size());
  }
  return {std::move(connectors), std::move(steps)};
}

std::pair<std::vector<NodeId>, std::vector<GreedyStep>>
greedy_connectors_reference(const Graph& g, const std::vector<NodeId>& mis) {
  const graph::FrozenGraph fg(g);
  const std::size_t n = fg.num_nodes();
  std::vector<bool> in_set(n, false);
  std::vector<NodeId> members = mis;  // I ∪ C as it grows
  for (const NodeId u : mis) {
    if (u >= n) {
      throw std::invalid_argument("greedy_connectors_reference: bad node");
    }
    in_set[u] = true;
  }

  std::vector<NodeId> connectors;
  std::vector<GreedyStep> steps;
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> comp(n, kUnset);
  std::vector<std::uint32_t> mark(n, kUnset);  // scratch per candidate scan

  while (true) {
    // Label components of G[I ∪ C].
    const auto [labels, q] = graph::subset_components(g, members);
    if (q <= 1) break;
    std::fill(comp.begin(), comp.end(), kUnset);
    std::fill(mark.begin(), mark.end(), kUnset);  // marks are per-round
    for (std::size_t i = 0; i < members.size(); ++i) {
      comp[members[i]] = labels[i];
    }

    // Find the maximum-gain node: gain(w) = (#distinct adjacent
    // components) - 1. Lemma 9 guarantees some node has gain >= 1.
    NodeId best = graph::kNoNode;
    std::size_t best_gain = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (in_set[w]) continue;
      std::size_t distinct = 0;
      for (const NodeId v : fg.neighbors(w)) {
        const std::uint32_t c = comp[v];
        if (c != kUnset && mark[c] != w) {
          mark[c] = w;
          ++distinct;
        }
      }
      if (distinct >= 2 && distinct - 1 > best_gain) {
        best = w;
        best_gain = distinct - 1;
      }
    }
    if (best == graph::kNoNode) {
      throw std::logic_error(
          "greedy_connectors_reference: no positive-gain node although "
          "q > 1 (input MIS is not maximal or graph is disconnected)");
    }
    steps.push_back({best, q, best_gain});
    connectors.push_back(best);
    members.push_back(best);
    in_set[best] = true;
  }
  return {std::move(connectors), std::move(steps)};
}

GreedyConnectResult greedy_cds(const Graph& g, NodeId root,
                               const obs::Obs& obs) {
  GreedyConnectResult r;
  {
    obs::ScopedTimer timer(obs, "greedy.phase1_mis");
    r.phase1 = bfs_first_fit_mis(g, root);
  }
  if (obs.metrics) {
    obs.metrics->counter("greedy.mis_size").add(r.phase1.mis.size());
  }
  auto [connectors, steps] = greedy_connectors(g, r.phase1.mis, obs);
  r.connectors = std::move(connectors);
  r.steps = std::move(steps);

  std::vector<bool> in_cds = r.phase1.in_mis;
  for (const NodeId c : r.connectors) in_cds[c] = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_cds[v]) r.cds.push_back(v);
  }
  return r;
}

}  // namespace mcds::core
