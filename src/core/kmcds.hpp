#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/mis.hpp"
#include "obs/obs.hpp"

/// \file kmcds.hpp
/// The fault-tolerant (k,m)-CDS family, built on the same two-phased
/// shape as the source paper: phase 1 grows an m-fold dominating set
/// (every node outside the set has >= m neighbors inside it), phase 2
/// makes the set k-connected for k in {1, 2}. A (k,m) backbone with
/// m >= 2 stays a dominating set of the survivor graph through any
/// single member crash *by construction* (coverage degrades from m to
/// m-1), and a k=2 backbone stays connected through any single member
/// crash — survive-by-construction, where the plain (1,1) CDS of the
/// paper needs reactive healing after the first dominator loss.
///
/// Construction (deterministic, ties to the smallest node id):
///  * Phase 1 seeds with the BFS first-fit MIS of [10] (coverage 1 and
///    the 2-hop separation that keeps phase 2 stall-free), then greedily
///    adds the node reducing the total coverage deficit the most,
///    maintained with incremental cover counts and a lazy max-gain
///    queue — exact because deficits only shrink as the set grows.
///  * Phase 2 k=1 runs the pluggable-policy connector engine
///    (connector_engine.hpp) over the phase-1 set.
///  * Phase 2 k=2 then eliminates articulation points of the induced
///    backbone: while some member v splits G[D] into two fragments that
///    still share a component of G - v, the cheapest patch path around
///    v (0/1-weighted BFS: members free, recruits cost 1) is added.
///    Splits the topology itself forces — the fragments land in
///    different components of G - v — are tolerated, exactly mirroring
///    what check_kmcds excuses.
///
/// The weighted variant kmcds_weighted ranks phase-1 candidates by
/// deficit-reduction per unit weight and runs phase 2 on the
/// NodeWeightedGainPolicy engine — the node-weighted (1,m)-CDS of the
/// minimum-weight m-fold literature (arXiv:1510.05886).

namespace mcds::core {

/// The (k, m) of a backbone: k-connectivity of the induced backbone
/// (k in {1, 2}) and m-fold domination of every outside node.
struct KmParams {
  std::uint32_t k = 1;
  std::uint32_t m = 1;

  /// Throws std::invalid_argument unless k in {1, 2} and m >= 1.
  void validate() const;
};

/// Output of the (k,m)-CDS construction.
struct KmCdsResult {
  KmParams params;
  std::vector<NodeId> dominators;  ///< phase-1 m-fold dominators, ascending
  std::vector<NodeId> connectors;  ///< k=1 connectivity picks, in pick order
  std::vector<NodeId> augmenters;  ///< k=2 augmentation recruits, in order
  std::vector<NodeId> backbone;    ///< the union, ascending node id
  double weight = 0.0;  ///< total backbone weight (node count if unweighted)
};

/// Phase 1 alone: the minimal m-fold dominating superset of the BFS
/// first-fit MIS grown by the deficit greedy. Requires a connected
/// graph (throws std::invalid_argument otherwise). For m = 1 this is
/// exactly bfs_first_fit_mis(g, root).mis. Nodes whose degree is below
/// m join the set themselves (no neighborhood can ever cover them).
/// Returned ascending. \p obs counts work under "kmcds.*".
[[nodiscard]] std::vector<NodeId> m_fold_dominators(const Graph& g,
                                                    std::uint32_t m,
                                                    NodeId root = 0,
                                                    const obs::Obs& obs = {});

/// Weighted phase 1: greedy by deficit-reduction / weight. \p weight
/// must have one positive entry per node.
[[nodiscard]] std::vector<NodeId> m_fold_dominators_weighted(
    const Graph& g, std::uint32_t m, std::span<const double> weight,
    NodeId root = 0, const obs::Obs& obs = {});

/// The full two-phased (k,m) construction. Requires a connected graph.
/// Shipped variants exercised by tests and the survivability harness:
/// (1,2), (2,1) and (2,2); (1,1) degenerates to the paper's greedy CDS
/// dominator/connector split over the same engine.
[[nodiscard]] KmCdsResult kmcds(const Graph& g, KmParams params,
                                NodeId root = 0, const obs::Obs& obs = {});

/// The node-weighted (1,m) variant: weighted phase 1 plus the
/// NodeWeightedGainPolicy phase 2. \p weight must have one positive
/// entry per node; result.weight sums the backbone's weights.
[[nodiscard]] KmCdsResult kmcds_weighted(const Graph& g, std::uint32_t m,
                                         std::span<const double> weight,
                                         NodeId root = 0,
                                         const obs::Obs& obs = {});

/// Why a set fails the (k,m)-CDS predicate.
enum class KmDefect {
  kNone,          ///< the set is a valid (k,m)-CDS
  kEmpty,         ///< empty set on a non-empty graph
  kUnderCovered,  ///< witness = a node outside the set with fewer than m
                  ///< set neighbors (observed/required say how short)
  kDisconnected,  ///< witness/witness2 = members of two different
                  ///< components of G[set]
  kCutVertex,     ///< k=2 only: witness = a member whose removal splits
                  ///< two backbone fragments that still share a
                  ///< component of G - witness; witness2 = a member cut
                  ///< off from the fragment holding the smallest member
};

/// Outcome of check_kmcds: the verdict plus a concrete witness, in the
/// check_cds style — a failing chaos assertion names *which* node is
/// under-covered, *which* member is an avoidable cut vertex, or which
/// fragments drifted apart, instead of a bare false.
struct KmCheck {
  bool ok = true;
  KmDefect defect = KmDefect::kNone;
  NodeId witness = graph::kNoNode;
  NodeId witness2 = graph::kNoNode;
  std::size_t observed = 0;  ///< coverage seen at the witness
                             ///< (kUnderCovered only)
  std::size_t required = 0;  ///< the m it fell short of

  /// Human-readable verdict ("valid (2,2)-CDS", "node 7 has 1 of 2
  /// required dominators", ...).
  [[nodiscard]] std::string describe() const;
};

/// The witness-reporting (k,m)-CDS predicate on a connected topology.
/// Checks, in order: non-emptiness, m-fold coverage of every outside
/// node, connectivity of G[set], and for k=2 the absence of avoidable
/// cut vertices. A member v is an *excusable* cut vertex iff no two
/// fragments of G[set] - v share a component of G - v — the topology
/// itself, not the construction, forbids biconnecting around v (UDG
/// instances routinely have bridge nodes). Throws std::invalid_argument
/// on out-of-range members or invalid params.
[[nodiscard]] KmCheck check_kmcds(const Graph& g, std::span<const NodeId> set,
                                  KmParams params);

/// check_kmcds relaxed to possibly-disconnected graphs (a partitioned
/// or crash-fragmented survivor topology): ok iff, within every
/// connected component of \p g, the members falling in that component
/// form a (k,m) backbone of it — the (k,m) analogue of
/// check_cds_components' CDS forest. A component without any member
/// reports its smallest node as kUnderCovered with observed = 0. On a
/// connected graph this is exactly check_kmcds.
[[nodiscard]] KmCheck check_kmcds_components(const Graph& g,
                                             std::span<const NodeId> set,
                                             KmParams params);

}  // namespace mcds::core
