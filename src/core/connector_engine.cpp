#include "core/connector_engine.hpp"

#include <stdexcept>

namespace mcds::core {

ConnectorEngine::ConnectorEngine(const Graph& g,
                                 std::span<const NodeId> members)
    : g_(g),
      uf_(g.num_nodes()),
      member_(g.num_nodes(), false),
      mark_(g.num_nodes(), 0) {
  const std::size_t n = g.num_nodes();
  for (const NodeId u : members) {
    if (u >= n) throw std::invalid_argument("ConnectorEngine: bad node");
    if (member_[u]) {
      throw std::invalid_argument("ConnectorEngine: duplicate member");
    }
    member_[u] = true;
  }
  q_ = members.size();
  // Unite member-member edges. For an independent seed (the intended
  // use) this is a no-op scan; for arbitrary seeds it reproduces the
  // component structure subset_components would report.
  for (const NodeId u : members) {
    for (const NodeId v : g.neighbors(u)) {
      if (v < u && member_[v] && uf_.unite(u, v)) --q_;
    }
  }
  if (q_ <= 1) return;
  // Seed the lazy queue: per Lemma 9 a positive-gain node always exists
  // while q > 1, and any node that becomes positive later is a neighbor
  // of an added connector, which select_next() refreshes.
  for (NodeId w = 0; w < n; ++w) {
    if (!member_[w]) push_if_candidate(w);
  }
}

std::size_t ConnectorEngine::distinct_adjacent(NodeId w) {
  ++stamp_;
  std::size_t distinct = 0;
  for (const NodeId v : g_.neighbors(w)) {
    if (!member_[v]) continue;
    const std::uint32_t root = uf_.find(v);
    if (mark_[root] != stamp_) {
      mark_[root] = stamp_;
      ++distinct;
    }
  }
  return distinct;
}

void ConnectorEngine::push_if_candidate(NodeId w) {
  const std::size_t distinct = distinct_adjacent(w);
  if (distinct >= 2) {
    heap_.push({static_cast<std::uint32_t>(distinct - 1), w});
  }
}

GreedyStep ConnectorEngine::select_next() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    if (member_[top.node]) continue;  // joined since this entry was pushed
    const std::size_t distinct = distinct_adjacent(top.node);
    if (distinct < 2) continue;  // gain collapsed to zero: retire the node
    const auto gain = static_cast<std::uint32_t>(distinct - 1);
    if (gain != top.gain) {
      heap_.push({gain, top.node});  // stale: re-score and keep popping
      continue;
    }
    const GreedyStep step{top.node, q_, gain};
    member_[top.node] = true;
    for (const NodeId v : g_.neighbors(top.node)) {
      if (member_[v]) uf_.unite(top.node, v);
    }
    q_ -= gain;  // `distinct` components and the new node merge into one
    for (const NodeId v : g_.neighbors(top.node)) {
      if (!member_[v]) push_if_candidate(v);
    }
    return step;
  }
  throw std::logic_error(
      "ConnectorEngine: no positive-gain node although q > 1 "
      "(input MIS is not maximal or graph is disconnected)");
}

}  // namespace mcds::core
