#include "core/connector_engine.hpp"

#include <stdexcept>

namespace mcds::core {

ConnectorEngine::ConnectorEngine(const Graph& g,
                                 std::span<const NodeId> members,
                                 const obs::Obs& obs)
    : g_(g),
      uf_(g.num_nodes()),
      member_(g.num_nodes(), false),
      mark_(g.num_nodes(), 0),
      c_uf_finds_(obs.counter("connector_engine.uf_finds")),
      c_uf_merges_(obs.counter("connector_engine.uf_merges")),
      c_pops_(obs.counter("connector_engine.pops")),
      c_stale_(obs.counter("connector_engine.stale_rescores")),
      c_retired_(obs.counter("connector_engine.retired")) {
  const std::size_t n = g.num_nodes();
  for (const NodeId u : members) {
    if (u >= n) throw std::invalid_argument("ConnectorEngine: bad node");
    if (member_[u]) {
      throw std::invalid_argument("ConnectorEngine: duplicate member");
    }
    member_[u] = true;
  }
  q_ = members.size();
  // Unite member-member edges. For an independent seed (the intended
  // use) this is a no-op scan; for arbitrary seeds it reproduces the
  // component structure subset_components would report.
  for (const NodeId u : members) {
    for (const NodeId v : g.neighbors(u)) {
      if (v < u && member_[v] && uf_.unite(u, v)) {
        --q_;
        if (c_uf_merges_) c_uf_merges_->add();
      }
    }
  }
  if (q_ <= 1) return;
  // Seed the lazy queue: per Lemma 9 a positive-gain node always exists
  // while q > 1, and any node that becomes positive later is a neighbor
  // of an added connector, which select_next() refreshes.
  for (NodeId w = 0; w < n; ++w) {
    if (!member_[w]) push_if_candidate(w);
  }
}

std::size_t ConnectorEngine::distinct_adjacent(NodeId w) {
  ++stamp_;
  std::size_t distinct = 0;
  std::size_t finds = 0;
  for (const NodeId v : g_.neighbors(w)) {
    if (!member_[v]) continue;
    const std::uint32_t root = uf_.find(v);
    ++finds;
    if (mark_[root] != stamp_) {
      mark_[root] = stamp_;
      ++distinct;
    }
  }
  if (c_uf_finds_) c_uf_finds_->add(finds);
  return distinct;
}

void ConnectorEngine::push_if_candidate(NodeId w) {
  const std::size_t distinct = distinct_adjacent(w);
  if (distinct >= 2) {
    heap_.push({static_cast<std::uint32_t>(distinct - 1), w});
  }
}

GreedyStep ConnectorEngine::select_next() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    if (c_pops_) c_pops_->add();
    if (member_[top.node]) continue;  // joined since this entry was pushed
    const std::size_t distinct = distinct_adjacent(top.node);
    if (distinct < 2) {
      if (c_retired_) c_retired_->add();
      continue;  // gain collapsed to zero: retire the node
    }
    const auto gain = static_cast<std::uint32_t>(distinct - 1);
    if (gain != top.gain) {
      heap_.push({gain, top.node});  // stale: re-score and keep popping
      if (c_stale_) c_stale_->add();
      continue;
    }
    const GreedyStep step{top.node, q_, gain};
    member_[top.node] = true;
    for (const NodeId v : g_.neighbors(top.node)) {
      if (member_[v] && uf_.unite(top.node, v) && c_uf_merges_) {
        c_uf_merges_->add();
      }
    }
    q_ -= gain;  // `distinct` components and the new node merge into one
    for (const NodeId v : g_.neighbors(top.node)) {
      if (!member_[v]) push_if_candidate(v);
    }
    return step;
  }
  throw std::logic_error(
      "ConnectorEngine: no positive-gain node although q > 1 "
      "(input MIS is not maximal or graph is disconnected)");
}

}  // namespace mcds::core
