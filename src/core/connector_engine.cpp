#include "core/connector_engine.hpp"

namespace mcds::core {

// The supported storage/policy combinations are instantiated here once:
// the CSR hot path (ConnectorEngine), the nested-vector baseline the
// locality benchmarks compare against, and the node-weighted CSR engine
// behind kmcds_weighted.
template class BasicConnectorEngine<graph::FrozenGraph, UnitGainPolicy>;
template class BasicConnectorEngine<graph::NestedView, UnitGainPolicy>;
template class BasicConnectorEngine<graph::FrozenGraph, NodeWeightedGainPolicy>;

}  // namespace mcds::core
