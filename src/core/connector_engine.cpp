#include "core/connector_engine.hpp"

namespace mcds::core {

// The two supported storage layouts are instantiated here once: the CSR
// hot path (ConnectorEngine) and the nested-vector baseline the
// locality benchmarks compare against.
template class BasicConnectorEngine<graph::FrozenGraph>;
template class BasicConnectorEngine<graph::NestedView>;

}  // namespace mcds::core
