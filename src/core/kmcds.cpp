#include "core/kmcds.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

#include "core/connector_engine.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "obs/timer.hpp"

namespace mcds::core {

void KmParams::validate() const {
  if (k < 1 || k > 2) {
    throw std::invalid_argument("KmParams: k must be 1 or 2");
  }
  if (m < 1) {
    throw std::invalid_argument("KmParams: m must be >= 1");
  }
}

namespace {

std::vector<std::uint8_t> membership_flags(const Graph& g,
                                           std::span<const NodeId> set) {
  std::vector<std::uint8_t> in(g.num_nodes(), 0);
  for (const NodeId v : set) {
    if (v >= g.num_nodes()) {
      throw std::invalid_argument("kmcds: node out of range");
    }
    in[v] = 1;
  }
  return in;
}

// ------------------------------------------------------------- phase 1

/// The deficit greedy shared by the unit and weighted phase-1 variants.
/// Starting from the seed flags (the BFS MIS), repeatedly adds the
/// node maximizing score_of(u, deficit_reduction(u)) until no node
/// outside the set is short of m dominators. Exact under a lazy queue:
/// cover counts only grow, so every stored score is an upper bound.
template <class Score, class ScoreFn>
void deficit_greedy(const graph::FrozenGraph& fg, std::uint32_t m,
                    std::vector<std::uint8_t>& in_d, ScoreFn score_of,
                    const obs::Obs& obs) {
  const std::size_t n = fg.num_nodes();
  std::vector<std::uint32_t> cover(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : fg.neighbors(v)) {
      if (in_d[u]) ++cover[v];
    }
  }
  std::size_t total_deficit = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!in_d[v] && cover[v] < m) total_deficit += m - cover[v];
  }

  // deficit_reduction(u) = u's own residual deficit (it stops needing
  // coverage the moment it joins) plus one unit per still-deficient
  // neighbor it would cover.
  const auto reduction = [&](NodeId u) -> std::size_t {
    std::size_t r = cover[u] < m ? m - cover[u] : 0;
    for (const NodeId v : fg.neighbors(u)) {
      if (!in_d[v] && cover[v] < m) ++r;
    }
    return r;
  };

  struct Entry {
    Score score;
    NodeId node;
    bool operator<(const Entry& other) const noexcept {
      if (score != other.score) return score < other.score;  // max-score first
      return node > other.node;                              // then smallest id
    }
  };
  std::priority_queue<Entry> heap;
  for (NodeId u = 0; u < n; ++u) {
    if (in_d[u]) continue;
    const std::size_t r = reduction(u);
    if (r > 0) heap.push({score_of(u, r), u});
  }

  obs::Counter* c_added = obs.counter("kmcds.phase1_added");
  obs::Counter* c_stale = obs.counter("kmcds.phase1_stale_rescores");
  while (total_deficit > 0) {
    if (heap.empty()) {
      // Unreachable: a deficient node always scores positive for itself.
      throw std::logic_error("m_fold_dominators: deficit with empty queue");
    }
    const Entry top = heap.top();
    heap.pop();
    if (in_d[top.node]) continue;
    const std::size_t r = reduction(top.node);
    if (r == 0) continue;  // deficit fully covered meanwhile: retire
    const Score score = score_of(top.node, r);
    if (score != top.score) {
      heap.push({score, top.node});  // stale upper bound: re-rank
      if (c_stale) c_stale->add();
      continue;
    }
    in_d[top.node] = 1;
    if (c_added) c_added->add();
    total_deficit -= cover[top.node] < m ? m - cover[top.node] : 0;
    for (const NodeId v : fg.neighbors(top.node)) {
      if (!in_d[v] && cover[v] < m) --total_deficit;
      ++cover[v];
    }
  }
}

std::vector<NodeId> flags_to_sorted(const std::vector<std::uint8_t>& in) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < in.size(); ++v) {
    if (in[v]) out.push_back(v);
  }
  return out;
}

// ------------------------------------------- articulation / k=2 helpers

/// Articulation flags of \p g (iterative Tarjan lowlink, any number of
/// components). art[v] == true iff removing v increases the component
/// count of the component containing it.
std::vector<std::uint8_t> articulation_flags(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint8_t> art(n, 0);
  std::vector<std::uint32_t> disc(n, 0);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<NodeId> parent(n, graph::kNoNode);
  std::uint32_t timer = 0;
  struct Frame {
    NodeId u;
    std::size_t next;
  };
  std::vector<Frame> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (disc[s] != 0) continue;
    disc[s] = low[s] = ++timer;
    stack.push_back({s, 0});
    std::size_t root_children = 0;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto nbrs = g.neighbors(f.u);
      if (f.next < nbrs.size()) {
        const NodeId v = nbrs[f.next++];
        if (disc[v] == 0) {
          parent[v] = f.u;
          if (f.u == s) ++root_children;
          disc[v] = low[v] = ++timer;
          stack.push_back({v, 0});
        } else if (v != parent[f.u]) {
          low[f.u] = std::min(low[f.u], disc[v]);
        }
      } else {
        const NodeId u = f.u;
        stack.pop_back();
        if (!stack.empty()) {
          const NodeId p = stack.back().u;
          low[p] = std::min(low[p], low[u]);
          if (p != s && low[u] >= disc[p]) art[p] = 1;
        }
      }
    }
    if (root_children >= 2) art[s] = 1;
  }
  return art;
}

constexpr std::uint32_t kNoLabel = std::numeric_limits<std::uint32_t>::max();

/// Component labels of G - avoid over all nodes (\p avoid gets
/// kNoLabel).
std::vector<std::uint32_t> components_avoiding(const Graph& g, NodeId avoid) {
  std::vector<std::uint32_t> comp(g.num_nodes(), kNoLabel);
  std::uint32_t count = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (s == avoid || comp[s] != kNoLabel) continue;
    comp[s] = count++;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const NodeId v : g.neighbors(u)) {
        if (v == avoid || comp[v] != kNoLabel) continue;
        comp[v] = comp[u];
        queue.push_back(v);
      }
    }
  }
  return comp;
}

/// The avoidability test for a cut member \p v, per fragment: \p v is
/// avoidable iff two member fragments of G[members] - v land in the
/// same component of G - v (the topology could hold them together, the
/// backbone fails to). Returns that component's label, or kNoLabel when
/// every split is topology-forced. A global mutual-reachability test is
/// NOT enough: one fragment marooned by the topology must not excuse an
/// avoidable split between two others.
std::uint32_t avoidable_component(std::span<const NodeId> members,
                                  const std::vector<std::uint32_t>& labels,
                                  NodeId v,
                                  const std::vector<std::uint32_t>& gcomp,
                                  std::size_t num_nodes) {
  std::vector<std::uint32_t> first_frag(num_nodes, kNoLabel);
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == v) continue;
    const std::uint32_t c = gcomp[members[i]];
    if (first_frag[c] == kNoLabel) {
      first_frag[c] = labels[i];
    } else if (first_frag[c] != labels[i]) {
      return c;
    }
  }
  return kNoLabel;
}

/// Fragment labels of members \ {avoid} inside G[members] - avoid, in
/// the order of \p members (entries for avoid get kNoLabel). Returns
/// the fragment count.

std::pair<std::vector<std::uint32_t>, std::size_t> fragments_without(
    const Graph& g, std::span<const NodeId> members,
    const std::vector<std::uint8_t>& in_set, NodeId avoid) {
  std::vector<std::uint32_t> label_of(g.num_nodes(), kNoLabel);
  std::size_t fragments = 0;
  std::deque<NodeId> queue;
  for (const NodeId seed : members) {
    if (seed == avoid || label_of[seed] != kNoLabel) continue;
    const auto label = static_cast<std::uint32_t>(fragments++);
    label_of[seed] = label;
    queue.push_back(seed);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const NodeId v : g.neighbors(u)) {
        if (v == avoid || !in_set[v] || label_of[v] != kNoLabel) continue;
        label_of[v] = label;
        queue.push_back(v);
      }
    }
  }
  std::vector<std::uint32_t> labels;
  labels.reserve(members.size());
  for (const NodeId v : members) {
    labels.push_back(v == avoid ? kNoLabel : label_of[v]);
  }
  return {std::move(labels), fragments};
}

/// The k=2 augmentation: recruit nodes until every cut vertex of
/// G[members] is excusable (no two member fragments share a component
/// of G - v). Each round patches the smallest avoidable cut vertex with
/// the cheapest path around it — a 0/1 BFS inside the shared component
/// where existing members are free and recruits cost one — so every
/// round adds at least one node and the loop ends after at most n
/// rounds.
std::vector<NodeId> biconnect_augment(const Graph& g,
                                      std::vector<std::uint8_t>& in_b,
                                      const obs::Obs& obs) {
  obs::ScopedTimer timer(obs, "kmcds.phase2_biconnect");
  obs::Counter* c_aug = obs.counter("kmcds.augmenters");
  std::vector<NodeId> recruits;
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  for (;;) {
    const std::vector<NodeId> members = flags_to_sorted(in_b);
    if (members.size() < 3) return recruits;
    const auto sub = graph::induced_subgraph(g, members);
    const auto art = articulation_flags(sub.graph);

    NodeId cut = graph::kNoNode;
    std::vector<std::uint32_t> labels;
    std::vector<std::uint32_t> gcomp;
    std::uint32_t patch_comp = kNoLabel;
    for (NodeId i = 0; i < members.size(); ++i) {
      if (!art[i]) continue;
      const NodeId v = members[i];  // sub.mapping preserves ascending order
      auto [frag_labels, frag_count] = fragments_without(g, members, in_b, v);
      if (frag_count < 2) continue;  // stale flag (cannot happen, be safe)
      auto comps = components_avoiding(g, v);
      const std::uint32_t bad =
          avoidable_component(members, frag_labels, v, comps, g.num_nodes());
      if (bad == kNoLabel) continue;  // every split is topology-forced
      cut = v;
      labels = std::move(frag_labels);
      gcomp = std::move(comps);
      patch_comp = bad;
      break;
    }
    if (cut == graph::kNoNode) return recruits;

    // Source fragment: the one holding the smallest member of the
    // shared component (a fragment is connected in G - cut, so it lies
    // entirely inside one component of G - cut).
    std::uint32_t source_label = kNoLabel;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] != cut && gcomp[members[i]] == patch_comp) {
        source_label = labels[i];
        break;
      }
    }
    // 0/1 BFS over G - cut: members free, recruits cost one.
    std::vector<std::size_t> dist(g.num_nodes(), kInf);
    std::vector<NodeId> parent(g.num_nodes(), graph::kNoNode);
    std::deque<NodeId> queue;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (labels[i] == source_label) {
        dist[members[i]] = 0;
        queue.push_back(members[i]);
      }
    }
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const NodeId v : g.neighbors(u)) {
        if (v == cut) continue;
        const std::size_t nd = dist[u] + (in_b[v] ? 0 : 1);
        if (nd < dist[v]) {
          dist[v] = nd;
          parent[v] = u;
          if (in_b[v]) {
            queue.push_front(v);
          } else {
            queue.push_back(v);
          }
        }
      }
    }
    // Cheapest member of any other fragment; ties to the smallest id.
    NodeId target = graph::kNoNode;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] == cut || labels[i] == source_label) continue;
      if (dist[members[i]] == kInf) continue;
      if (target == graph::kNoNode || dist[members[i]] < dist[target] ||
          (dist[members[i]] == dist[target] && members[i] < target)) {
        target = members[i];
      }
    }
    if (target == graph::kNoNode) {
      // Unreachable by construction: the shared component holds a member
      // of another fragment, and the BFS covers that whole component.
      throw std::logic_error("kmcds: biconnect patch target vanished");
    }
    bool added = false;
    for (NodeId u = target; u != graph::kNoNode; u = parent[u]) {
      if (!in_b[u]) {
        in_b[u] = 1;
        recruits.push_back(u);
        if (c_aug) c_aug->add();
        added = true;
      }
    }
    if (!added) {
      // A zero-cost path would mean the fragments were already one.
      throw std::logic_error("kmcds: biconnect patch added no node");
    }
  }
}

}  // namespace

std::vector<NodeId> m_fold_dominators(const Graph& g, std::uint32_t m,
                                      NodeId root, const obs::Obs& obs) {
  KmParams{1, m}.validate();
  obs::ScopedTimer timer(obs, "kmcds.phase1_mfold");
  const MisResult mis = bfs_first_fit_mis(g, root);
  std::vector<std::uint8_t> in_d(g.num_nodes(), 0);
  for (const NodeId v : mis.mis) in_d[v] = 1;
  deficit_greedy<std::uint64_t>(
      graph::FrozenGraph(g), m, in_d,
      [](NodeId, std::size_t r) { return static_cast<std::uint64_t>(r); },
      obs);
  return flags_to_sorted(in_d);
}

std::vector<NodeId> m_fold_dominators_weighted(const Graph& g, std::uint32_t m,
                                               std::span<const double> weight,
                                               NodeId root,
                                               const obs::Obs& obs) {
  KmParams{1, m}.validate();
  if (weight.size() != g.num_nodes()) {
    throw std::invalid_argument("m_fold_dominators_weighted: weight size");
  }
  for (const double w : weight) {
    if (!(w > 0.0)) {
      throw std::invalid_argument(
          "m_fold_dominators_weighted: weights must be positive");
    }
  }
  obs::ScopedTimer timer(obs, "kmcds.phase1_mfold");
  const MisResult mis = bfs_first_fit_mis(g, root);
  std::vector<std::uint8_t> in_d(g.num_nodes(), 0);
  for (const NodeId v : mis.mis) in_d[v] = 1;
  deficit_greedy<double>(
      graph::FrozenGraph(g), m, in_d,
      [weight](NodeId u, std::size_t r) {
        return static_cast<double>(r) / weight[u];
      },
      obs);
  return flags_to_sorted(in_d);
}

namespace {

/// Phases 2a (connect) and 2b (k=2 biconnect) over a phase-1 set, shared
/// by the unit and weighted pipelines. \p engine must already be seeded
/// with result.dominators.
template <class Engine>
void finish_kmcds(const Graph& g, Engine& engine, KmCdsResult& result,
                  const obs::Obs& obs) {
  {
    obs::ScopedTimer timer(obs, "kmcds.phase2_connect");
    while (!engine.done()) {
      result.connectors.push_back(engine.select_next().node);
    }
  }
  std::vector<std::uint8_t> in_b(g.num_nodes(), 0);
  for (const NodeId v : result.dominators) in_b[v] = 1;
  for (const NodeId v : result.connectors) in_b[v] = 1;
  if (result.params.k == 2) {
    result.augmenters = biconnect_augment(g, in_b, obs);
  }
  result.backbone = flags_to_sorted(in_b);
}

}  // namespace

KmCdsResult kmcds(const Graph& g, KmParams params, NodeId root,
                  const obs::Obs& obs) {
  params.validate();
  KmCdsResult result;
  result.params = params;
  result.dominators = m_fold_dominators(g, params.m, root, obs);
  ConnectorEngine engine(g, result.dominators, obs);
  finish_kmcds(g, engine, result, obs);
  result.weight = static_cast<double>(result.backbone.size());
  return result;
}

KmCdsResult kmcds_weighted(const Graph& g, std::uint32_t m,
                           std::span<const double> weight, NodeId root,
                           const obs::Obs& obs) {
  KmCdsResult result;
  result.params = {1, m};
  result.dominators = m_fold_dominators_weighted(g, m, weight, root, obs);
  WeightedConnectorEngine engine(g, result.dominators, weight, obs);
  finish_kmcds(g, engine, result, obs);
  for (const NodeId v : result.backbone) result.weight += weight[v];
  return result;
}

// ------------------------------------------------------------ validators

std::string KmCheck::describe() const {
  switch (defect) {
    case KmDefect::kNone:
      return "valid (k,m)-CDS";
    case KmDefect::kEmpty:
      return "empty set on a non-empty graph";
    case KmDefect::kUnderCovered:
      return "node " + std::to_string(witness) + " has " +
             std::to_string(observed) + " of " + std::to_string(required) +
             " required dominators";
    case KmDefect::kDisconnected:
      return "backbone is disconnected: members " + std::to_string(witness) +
             " and " + std::to_string(witness2) +
             " lie in different components of G[set]";
    case KmDefect::kCutVertex:
      return "member " + std::to_string(witness) +
             " is an avoidable cut vertex: its loss splits the backbone "
             "(member " +
             std::to_string(witness2) +
             " cut off) although it stays reachable in G - " +
             std::to_string(witness);
  }
  return "unknown defect";
}

namespace {

/// m-fold coverage sweep: smallest node outside the set with fewer than
/// m set neighbors, plus its observed coverage. kNoNode when covered.
std::pair<NodeId, std::size_t> first_under_covered(
    const graph::FrozenGraph& fg, const std::vector<std::uint8_t>& in,
    std::uint32_t m) {
  for (NodeId v = 0; v < fg.num_nodes(); ++v) {
    if (in[v]) continue;
    std::size_t count = 0;
    for (const NodeId u : fg.neighbors(v)) {
      if (in[u] && ++count >= m) break;
    }
    if (count < m) return {v, count};
  }
  return {graph::kNoNode, 0};
}

/// The k=2 leg on one member list (one topology component): the
/// smallest avoidable cut vertex, with a witness from a severed
/// fragment. Members must be ascending.
KmCheck cut_vertex_check(const Graph& g, std::span<const NodeId> members,
                         const std::vector<std::uint8_t>& in_set) {
  KmCheck out;
  if (members.size() < 3) return out;  // removal leaves <= 1 member
  const auto sub = graph::induced_subgraph(g, members);
  const auto art = articulation_flags(sub.graph);
  for (NodeId i = 0; i < members.size(); ++i) {
    if (!art[i]) continue;
    const NodeId v = members[i];
    const auto [labels, fragments] = fragments_without(g, members, in_set, v);
    if (fragments < 2) continue;
    const auto gcomp = components_avoiding(g, v);
    const std::uint32_t bad =
        avoidable_component(members, labels, v, gcomp, g.num_nodes());
    if (bad == kNoLabel) continue;  // every split is topology-forced
    out.ok = false;
    out.defect = KmDefect::kCutVertex;
    out.witness = v;
    // witness2: first member of the shared component outside its
    // smallest member's fragment.
    std::uint32_t first_label = kNoLabel;
    for (std::size_t j = 0; j < members.size(); ++j) {
      if (members[j] == v || gcomp[members[j]] != bad) continue;
      if (first_label == kNoLabel) {
        first_label = labels[j];
      } else if (labels[j] != first_label) {
        out.witness2 = members[j];
        break;
      }
    }
    return out;
  }
  return out;
}

}  // namespace

KmCheck check_kmcds(const Graph& g, std::span<const NodeId> set,
                    KmParams params) {
  params.validate();
  KmCheck out;
  out.required = params.m;
  if (g.num_nodes() == 0) {
    if (!set.empty()) {
      throw std::invalid_argument("kmcds: node out of range");
    }
    return out;
  }
  const auto in = membership_flags(g, set);
  if (set.empty()) {
    out.ok = false;
    out.defect = KmDefect::kEmpty;
    return out;
  }
  const auto [uncovered, observed] =
      first_under_covered(graph::FrozenGraph(g), in, params.m);
  if (uncovered != graph::kNoNode) {
    out.ok = false;
    out.defect = KmDefect::kUnderCovered;
    out.witness = uncovered;
    out.observed = observed;
    return out;
  }
  const auto [labels, components] = graph::subset_components(g, set);
  if (components > 1) {
    out.ok = false;
    out.defect = KmDefect::kDisconnected;
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (labels[i] == 0 && out.witness == graph::kNoNode) out.witness = set[i];
      if (labels[i] == 1 && out.witness2 == graph::kNoNode) {
        out.witness2 = set[i];
      }
    }
    return out;
  }
  if (params.k == 2) {
    std::vector<NodeId> members(set.begin(), set.end());
    std::sort(members.begin(), members.end());
    KmCheck cut = cut_vertex_check(g, members, in);
    if (!cut.ok) {
      cut.required = params.m;
      return cut;
    }
  }
  return out;
}

KmCheck check_kmcds_components(const Graph& g, std::span<const NodeId> set,
                               KmParams params) {
  params.validate();
  KmCheck out;
  out.required = params.m;
  if (g.num_nodes() == 0) {
    if (!set.empty()) {
      throw std::invalid_argument("kmcds: node out of range");
    }
    return out;
  }
  const auto in = membership_flags(g, set);
  // Coverage is component-local by construction (neighborhoods never
  // cross components), so one global sweep covers every component —
  // including memberless ones, whose every node is under-covered.
  const auto [uncovered, observed] =
      first_under_covered(graph::FrozenGraph(g), in, params.m);
  if (uncovered != graph::kNoNode) {
    out.ok = false;
    out.defect = KmDefect::kUnderCovered;
    out.witness = uncovered;
    out.observed = observed;
    return out;
  }
  // Connectivity per topology component, then the k=2 leg per component.
  const auto [comp, num_comps] = graph::connected_components(g);
  std::vector<std::vector<NodeId>> by_comp(num_comps);
  for (const NodeId v : set) by_comp[comp[v]].push_back(v);
  for (auto& members : by_comp) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    const auto [labels, fragments] = graph::subset_components(g, members);
    if (fragments > 1) {
      out.ok = false;
      out.defect = KmDefect::kDisconnected;
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (labels[i] == 0 && out.witness == graph::kNoNode) {
          out.witness = members[i];
        }
        if (labels[i] == 1 && out.witness2 == graph::kNoNode) {
          out.witness2 = members[i];
        }
      }
      return out;
    }
    if (params.k == 2) {
      KmCheck cut = cut_vertex_check(g, members, in);
      if (!cut.ok) {
        cut.required = params.m;
        return cut;
      }
    }
  }
  return out;
}

}  // namespace mcds::core
