#pragma once

#include <vector>

#include "core/mis.hpp"
#include "obs/obs.hpp"

/// \file greedy_connect.hpp
/// The paper's new two-phased algorithm (Section IV): phase 1 is the
/// same BFS first-fit MIS; phase 2 repeatedly adds the node of maximum
/// *gain* — the drop in the number of connected components of G[I ∪ C] —
/// until one component remains. Theorem 10: |I ∪ C| <= 6 7/18 · γ_c.

namespace mcds::core {

/// One greedy step of phase 2.
struct GreedyStep {
  NodeId node = 0;             ///< the connector chosen at this step
  std::size_t q_before = 0;    ///< q(C) just before the step
  std::size_t gain = 0;        ///< Δ_w q(C) realized by the step
};

/// Output of the greedy-connector construction.
struct GreedyConnectResult {
  MisResult phase1;                ///< dominators and the BFS structure
  std::vector<NodeId> connectors;  ///< phase-2 connectors in pick order
  std::vector<GreedyStep> steps;   ///< per-step accounting (for Thm 10)
  std::vector<NodeId> cds;         ///< I ∪ C, ascending node id
};

/// Runs the Section IV algorithm from \p root. Requires a connected
/// graph with at least one node. Ties in gain are broken toward the
/// smaller node id, making the output deterministic. \p obs (null sinks
/// by default) times the two phases and counts engine work.
[[nodiscard]] GreedyConnectResult greedy_cds(const Graph& g, NodeId root = 0,
                                             const obs::Obs& obs = {});

/// Phase 2 alone: greedily connects an arbitrary maximal independent set
/// \p mis of \p g (needed by the baseline variants and ablations).
/// Preconditions: g connected, mis a maximal independent set.
/// Returns the connectors in pick order, with step accounting.
///
/// Runs on the incremental union-find + lazy-gain-queue engine
/// (connector_engine.hpp) — near-linear total work instead of the
/// O(rounds·(n+m)) full rescan, with bit-identical output.
[[nodiscard]] std::pair<std::vector<NodeId>, std::vector<GreedyStep>>
greedy_connectors(const Graph& g, const std::vector<NodeId>& mis,
                  const obs::Obs& obs = {});

/// The original per-round implementation: re-labels the components of
/// G[I ∪ C] and rescans every node's neighborhood each round. Kept as
/// the differential-testing oracle for the incremental engine; produces
/// exactly the same connector sequence and GreedyStep trace.
[[nodiscard]] std::pair<std::vector<NodeId>, std::vector<GreedyStep>>
greedy_connectors_reference(const Graph& g, const std::vector<NodeId>& mis);

}  // namespace mcds::core
