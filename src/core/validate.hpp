#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/traversal.hpp"

/// \file validate.hpp
/// Correctness predicates for dominating-set constructions. Every
/// algorithm in this library is checked against these in tests, and the
/// bench harness re-checks each produced CDS before reporting it.

namespace mcds::par {
class ThreadPool;
}  // namespace mcds::par

namespace mcds::core {

using graph::Graph;
using graph::NodeId;

/// True if \p set is an independent set of \p g (no two members
/// adjacent).
[[nodiscard]] bool is_independent_set(const Graph& g,
                                      std::span<const NodeId> set);

/// True if \p set is a *maximal* independent set: independent, and every
/// non-member has a member neighbor (equivalently: independent and
/// dominating).
[[nodiscard]] bool is_maximal_independent_set(const Graph& g,
                                              std::span<const NodeId> set);

/// True if every node of \p g is in \p set or adjacent to a member.
[[nodiscard]] bool is_dominating_set(const Graph& g,
                                     std::span<const NodeId> set);

/// Parallel domination sweep over \p pool. The node range is split into
/// chunks whose boundaries depend only on n and the pool size, and the
/// verdict is an AND-reduction, so the result is identical to the serial
/// overload at every thread count.
[[nodiscard]] bool is_dominating_set(const Graph& g,
                                     std::span<const NodeId> set,
                                     par::ThreadPool& pool);

/// True if \p set is a connected dominating set: dominating, non-empty
/// (for non-empty graphs) and G[set] connected.
[[nodiscard]] bool is_cds(const Graph& g, std::span<const NodeId> set);

/// is_cds with the domination sweep fanned over \p pool (the
/// connectivity BFS stays serial: it is O(|set| + edges-within-set),
/// already tiny next to the full-graph domination scan).
[[nodiscard]] bool is_cds(const Graph& g, std::span<const NodeId> set,
                          par::ThreadPool& pool);

/// Why a set fails the CDS predicate.
enum class CdsDefect {
  kNone,          ///< the set is a valid CDS
  kEmpty,         ///< empty set on a non-empty graph
  kUndominated,   ///< witness = a node with no member in its closed
                  ///< neighborhood
  kDisconnected,  ///< witness/witness2 = members of two different
                  ///< components of G[set]
};

/// Outcome of check_cds: the verdict plus a concrete witness, so a
/// failing chaos assertion can say *which* node is uncovered or *which*
/// backbone fragments drifted apart instead of a bare false.
struct CdsCheck {
  bool ok = true;
  CdsDefect defect = CdsDefect::kNone;
  NodeId witness = graph::kNoNode;   ///< undominated node, or a member of
                                     ///< the first backbone component
  NodeId witness2 = graph::kNoNode;  ///< member of a second component
                                     ///< (kDisconnected only)

  /// Human-readable verdict ("valid CDS", "node 7 is undominated", ...).
  [[nodiscard]] std::string describe() const;
};

/// The witness-reporting version of is_cds. Domination is checked before
/// connectivity, so a set broken in both ways reports the undominated
/// node. Throws std::invalid_argument on out-of-range members.
[[nodiscard]] CdsCheck check_cds(const Graph& g, std::span<const NodeId> set);

/// check_cds with the domination sweep parallelized over \p pool. The
/// witness is the minimum over per-chunk first failures, which equals
/// the serial scan's first failure — same verdict, same witness, at any
/// thread count.
[[nodiscard]] CdsCheck check_cds(const Graph& g, std::span<const NodeId> set,
                                 par::ThreadPool& pool);

/// check_cds relaxed to possibly-disconnected graphs (a partitioned or
/// crash-fragmented survivor topology): ok iff, within every connected
/// component of \p g, the members falling in that component form a CDS
/// of it — a "CDS forest". A component without any member reports its
/// smallest node as kUndominated; members of one topology component
/// split across two backbone fragments report kDisconnected with a
/// witness in each fragment. On a connected graph this is exactly
/// check_cds. Throws std::invalid_argument on out-of-range members.
[[nodiscard]] CdsCheck check_cds_components(const Graph& g,
                                            std::span<const NodeId> set);

/// The 2-hop separation property of the BFS first-fit MIS ([10], used by
/// Lemma 9): every MIS node other than the BFS root has another MIS node
/// at hop distance exactly 2 that was selected earlier. \p order_rank
/// maps node -> its rank in the selection order (any strictly increasing
/// numbering works).
[[nodiscard]] bool has_two_hop_separation(
    const Graph& g, std::span<const NodeId> mis,
    std::span<const std::size_t> order_rank, NodeId root);

}  // namespace mcds::core
