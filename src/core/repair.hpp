#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file repair.hpp
/// Local CDS maintenance: when the topology changes (node failures,
/// mobility), repair the previous backbone instead of rebuilding it.
/// Repair first restores domination (adding best-coverage neighbors of
/// uncovered nodes), then restores connectivity (preferring positive-
/// gain connectors, falling back to shortest-path merging). The repaired
/// set is always a valid CDS of the new topology; the point is that it
/// usually differs from the old backbone in only a few nodes (low
/// churn), which the maintenance bench quantifies against full rebuild.

namespace mcds::core {

using graph::Graph;
using graph::NodeId;

/// Outcome of a repair.
struct RepairResult {
  std::vector<NodeId> cds;  ///< valid CDS of the new topology, ascending
  std::size_t kept = 0;     ///< old backbone nodes still in the CDS
  std::size_t added = 0;    ///< nodes newly recruited
  std::size_t dropped = 0;  ///< old backbone nodes discarded
};

/// Repairs \p old_cds against the (changed) topology \p g. Entries of
/// old_cds that are out of range are treated as failed nodes and
/// dropped. Preconditions: g connected with >= 1 node.
[[nodiscard]] RepairResult repair_cds(const Graph& g,
                                      const std::vector<NodeId>& old_cds);

/// Connectivity-only repair: reglues the fragments of \p old_cds without
/// re-checking domination — the right tool when a validity check already
/// pinned the defect to a split backbone (core::check_cds reporting
/// kDisconnected). Same pruning of out-of-range entries as repair_cds;
/// the result is a valid CDS iff the pruned input was still dominating.
/// Preconditions: g connected with >= 1 node.
[[nodiscard]] RepairResult reconnect_cds(const Graph& g,
                                         const std::vector<NodeId>& old_cds);

/// repair_cds lifted to possibly-disconnected topologies (a partitioned
/// or crash-fragmented survivor graph): every connected component of
/// \p g is repaired independently against the members of \p old_cds
/// that fall in it, and the union is returned — a valid CDS of each
/// component (the "CDS forest" check_cds_components validates). The
/// kept/added/dropped counters aggregate across components. On a
/// connected graph this is exactly repair_cds. Preconditions: g with
/// >= 1 node.
[[nodiscard]] RepairResult repair_cds_components(
    const Graph& g, const std::vector<NodeId>& old_cds);

/// reconnect_cds lifted the same way: each component's members are
/// reglued within their component only (the cut itself is not bridged —
/// it cannot be). The result is a valid CDS forest iff the pruned input
/// dominated every component.
[[nodiscard]] RepairResult reconnect_cds_components(
    const Graph& g, const std::vector<NodeId>& old_cds);

}  // namespace mcds::core
