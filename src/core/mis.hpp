#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/traversal.hpp"

/// \file mis.hpp
/// Phase 1 of both two-phased algorithms: construction of a maximal
/// independent set (the *dominators*). The paper's algorithms use the
/// BFS first-fit MIS of Wan–Alzoubi–Frieder [10], whose 2-hop separation
/// property drives Lemma 9 and both ratio proofs.

namespace mcds::core {

using graph::Graph;
using graph::NodeId;

/// Output of a phase-1 MIS construction.
struct MisResult {
  /// The maximal independent set, in selection order.
  std::vector<NodeId> mis;
  /// in_mis[v] — membership indicator.
  std::vector<bool> in_mis;
  /// The BFS traversal that ordered the selection (root, order, parent,
  /// level). For order-based variants without a BFS, parent/level are
  /// empty.
  graph::BfsResult bfs;
};

/// First-fit MIS over an explicit node ordering: scan \p order; a node
/// joins the MIS iff none of its already-scanned neighbors joined.
/// \p order must enumerate distinct valid nodes (not necessarily all).
[[nodiscard]] MisResult first_fit_mis(const Graph& g,
                                      std::span<const NodeId> order);

/// The MIS of [10]: first-fit in BFS order from \p root. The root always
/// joins the MIS. Requires a connected graph (throws otherwise) so that
/// the BFS order covers every node.
[[nodiscard]] MisResult bfs_first_fit_mis(const Graph& g, NodeId root = 0);

/// First-fit MIS in increasing node-id order (the "arbitrary MIS" of
/// [1], [9] — no BFS structure). Works on disconnected graphs.
[[nodiscard]] MisResult lowest_id_mis(const Graph& g);

/// First-fit MIS in decreasing degree order (a common heuristic MIS used
/// as an ablation: larger early coverage, but no 2-hop separation order
/// guarantee relative to a tree).
[[nodiscard]] MisResult max_degree_mis(const Graph& g);

}  // namespace mcds::core
