#include "core/validate.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "graph/subgraph.hpp"
#include "par/thread_pool.hpp"

namespace mcds::core {

namespace {
std::vector<bool> membership(const Graph& g, std::span<const NodeId> set) {
  std::vector<bool> in(g.num_nodes(), false);
  for (const NodeId v : set) {
    if (v >= g.num_nodes()) {
      throw std::invalid_argument("validate: node out of range");
    }
    in[v] = true;
  }
  return in;
}

/// Smallest undominated node given the membership mask, or kNoNode.
/// The serial path is the pool==nullptr instantiation of the chunked
/// sweep, so both paths share one scan and one witness rule.
NodeId first_undominated(const graph::FrozenGraph& fg,
                         const std::vector<bool>& in, par::ThreadPool* pool) {
  const std::size_t n = fg.num_nodes();
  // Chunks are a pure function of n, and the merged witness is the
  // minimum over per-chunk minima, so the answer is identical at any
  // worker count. ~8 chunks per worker keeps the stealer fed on skewed
  // degree distributions without drowning in task overhead.
  const std::size_t workers = pool ? pool->size() : 1;
  const std::size_t grain =
      std::max<std::size_t>(256, n / std::max<std::size_t>(workers * 8, 1));
  const std::size_t chunks = n == 0 ? 0 : (n - 1) / grain + 1;
  std::vector<NodeId> chunk_witness(chunks, graph::kNoNode);
  par::parallel_for(
      pool, n, grain,
      [&fg, &in, &chunk_witness](std::size_t begin, std::size_t end,
                                 std::size_t chunk) {
        for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
          if (in[v]) continue;
          bool dominated = false;
          for (const NodeId u : fg.neighbors(v)) {
            if (in[u]) {
              dominated = true;
              break;
            }
          }
          if (!dominated) {
            chunk_witness[chunk] = v;
            return;  // first failure in this chunk is the chunk minimum
          }
        }
      });
  for (const NodeId w : chunk_witness) {
    if (w != graph::kNoNode) return w;
  }
  return graph::kNoNode;
}
}  // namespace

bool is_independent_set(const Graph& g, std::span<const NodeId> set) {
  const auto in = membership(g, set);
  const graph::FrozenGraph fg(g);
  for (const NodeId u : set) {
    for (const NodeId v : fg.neighbors(u)) {
      if (in[v]) return false;
    }
  }
  return true;
}

bool is_dominating_set(const Graph& g, std::span<const NodeId> set) {
  const auto in = membership(g, set);
  return first_undominated(graph::FrozenGraph(g), in, nullptr) ==
         graph::kNoNode;
}

bool is_dominating_set(const Graph& g, std::span<const NodeId> set,
                       par::ThreadPool& pool) {
  const auto in = membership(g, set);
  return first_undominated(graph::FrozenGraph(g), in, &pool) ==
         graph::kNoNode;
}

bool is_maximal_independent_set(const Graph& g, std::span<const NodeId> set) {
  return is_independent_set(g, set) && is_dominating_set(g, set);
}

bool is_cds(const Graph& g, std::span<const NodeId> set) {
  if (g.num_nodes() == 0) return set.empty();
  if (set.empty()) return false;
  return is_dominating_set(g, set) && graph::is_connected_subset(g, set);
}

bool is_cds(const Graph& g, std::span<const NodeId> set,
            par::ThreadPool& pool) {
  if (g.num_nodes() == 0) return set.empty();
  if (set.empty()) return false;
  return is_dominating_set(g, set, pool) &&
         graph::is_connected_subset(g, set);
}

std::string CdsCheck::describe() const {
  switch (defect) {
    case CdsDefect::kNone:
      return "valid CDS";
    case CdsDefect::kEmpty:
      return "empty set on a non-empty graph";
    case CdsDefect::kUndominated:
      return "node " + std::to_string(witness) +
             " has no CDS member in its closed neighborhood";
    case CdsDefect::kDisconnected:
      return "backbone is disconnected: members " + std::to_string(witness) +
             " and " + std::to_string(witness2) +
             " lie in different components of G[set]";
  }
  return "unknown defect";
}

namespace {
CdsCheck check_cds_impl(const Graph& g, std::span<const NodeId> set,
                        par::ThreadPool* pool) {
  CdsCheck out;
  if (g.num_nodes() == 0) {
    if (!set.empty()) {
      throw std::invalid_argument("validate: node out of range");
    }
    return out;
  }
  if (set.empty()) {
    out.ok = false;
    out.defect = CdsDefect::kEmpty;
    return out;
  }
  const auto in = membership(g, set);
  const NodeId undominated =
      first_undominated(graph::FrozenGraph(g), in, pool);
  if (undominated != graph::kNoNode) {
    out.ok = false;
    out.defect = CdsDefect::kUndominated;
    out.witness = undominated;
    return out;
  }
  const auto [labels, components] = graph::subset_components(g, set);
  if (components > 1) {
    out.ok = false;
    out.defect = CdsDefect::kDisconnected;
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (labels[i] == 0 && out.witness == graph::kNoNode) out.witness = set[i];
      if (labels[i] == 1 && out.witness2 == graph::kNoNode) {
        out.witness2 = set[i];
      }
    }
  }
  return out;
}
}  // namespace

CdsCheck check_cds(const Graph& g, std::span<const NodeId> set) {
  return check_cds_impl(g, set, nullptr);
}

CdsCheck check_cds(const Graph& g, std::span<const NodeId> set,
                   par::ThreadPool& pool) {
  return check_cds_impl(g, set, &pool);
}

CdsCheck check_cds_components(const Graph& g, std::span<const NodeId> set) {
  CdsCheck out;
  if (g.num_nodes() == 0) {
    if (!set.empty()) {
      throw std::invalid_argument("validate: node out of range");
    }
    return out;
  }
  const auto in = membership(g, set);
  // Domination is component-local by construction (closed neighborhoods
  // never cross components), so one global scan covers every component —
  // including memberless ones, whose every node is undominated.
  const NodeId undominated =
      first_undominated(graph::FrozenGraph(g), in, nullptr);
  if (undominated != graph::kNoNode) {
    out.ok = false;
    out.defect = CdsDefect::kUndominated;
    out.witness = undominated;
    return out;
  }
  // Connectivity per topology component: the members of each component
  // must form a single fragment of G[set].
  const auto [comp, num_comps] = graph::connected_components(g);
  std::vector<std::vector<NodeId>> by_comp(num_comps);
  for (const NodeId v : set) by_comp[comp[v]].push_back(v);
  for (const auto& members : by_comp) {
    if (members.size() < 2) continue;
    const auto [labels, fragments] = graph::subset_components(g, members);
    if (fragments <= 1) continue;
    out.ok = false;
    out.defect = CdsDefect::kDisconnected;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (labels[i] == 0 && out.witness == graph::kNoNode) {
        out.witness = members[i];
      }
      if (labels[i] == 1 && out.witness2 == graph::kNoNode) {
        out.witness2 = members[i];
      }
    }
    return out;
  }
  return out;
}

bool has_two_hop_separation(const Graph& g, std::span<const NodeId> mis,
                            std::span<const std::size_t> order_rank,
                            NodeId root) {
  const auto in = membership(g, mis);
  const graph::FrozenGraph fg(g);
  if (order_rank.size() != g.num_nodes()) {
    throw std::invalid_argument(
        "has_two_hop_separation: rank size mismatch");
  }
  for (const NodeId u : mis) {
    if (u == root) continue;
    bool ok = false;
    for (const NodeId v : fg.neighbors(u)) {
      for (const NodeId w : fg.neighbors(v)) {
        if (w != u && in[w] && order_rank[w] < order_rank[u]) {
          ok = true;
          break;
        }
      }
      if (ok) break;
    }
    if (!ok) return false;
  }
  return true;
}

}  // namespace mcds::core
