#include "core/validate.hpp"

#include <limits>
#include <stdexcept>

#include "graph/subgraph.hpp"

namespace mcds::core {

namespace {
std::vector<bool> membership(const Graph& g, std::span<const NodeId> set) {
  std::vector<bool> in(g.num_nodes(), false);
  for (const NodeId v : set) {
    if (v >= g.num_nodes()) {
      throw std::invalid_argument("validate: node out of range");
    }
    in[v] = true;
  }
  return in;
}
}  // namespace

bool is_independent_set(const Graph& g, std::span<const NodeId> set) {
  const auto in = membership(g, set);
  for (const NodeId u : set) {
    for (const NodeId v : g.neighbors(u)) {
      if (in[v]) return false;
    }
  }
  return true;
}

bool is_dominating_set(const Graph& g, std::span<const NodeId> set) {
  const auto in = membership(g, set);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in[v]) continue;
    bool dominated = false;
    for (const NodeId u : g.neighbors(v)) {
      if (in[u]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g, std::span<const NodeId> set) {
  return is_independent_set(g, set) && is_dominating_set(g, set);
}

bool is_cds(const Graph& g, std::span<const NodeId> set) {
  if (g.num_nodes() == 0) return set.empty();
  if (set.empty()) return false;
  return is_dominating_set(g, set) && graph::is_connected_subset(g, set);
}

bool has_two_hop_separation(const Graph& g, std::span<const NodeId> mis,
                            std::span<const std::size_t> order_rank,
                            NodeId root) {
  const auto in = membership(g, mis);
  if (order_rank.size() != g.num_nodes()) {
    throw std::invalid_argument(
        "has_two_hop_separation: rank size mismatch");
  }
  for (const NodeId u : mis) {
    if (u == root) continue;
    bool ok = false;
    for (const NodeId v : g.neighbors(u)) {
      for (const NodeId w : g.neighbors(v)) {
        if (w != u && in[w] && order_rank[w] < order_rank[u]) {
          ok = true;
          break;
        }
      }
      if (ok) break;
    }
    if (!ok) return false;
  }
  return true;
}

}  // namespace mcds::core
