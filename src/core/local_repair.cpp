#include "core/local_repair.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/connector_engine.hpp"
#include "graph/subgraph.hpp"
#include "graph/traversal.hpp"
#include "graph/union_find.hpp"

namespace mcds::core {

using graph::DeltaGraph;
using graph::EdgeDelta;
using graph::NodeId;

namespace {

void sort_unique(std::vector<NodeId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

void fill_neighbors(const DeltaGraph& g, NodeId u, std::vector<NodeId>& out) {
  out.clear();
  g.for_each_neighbor(u, [&](NodeId v) { out.push_back(v); });
}

/// Patches one 3-hop gap between member fragments of the connected graph
/// \p g: labels the fragments, then scans (m asc, x asc, y asc, z asc)
/// for a member—x—y—member path crossing two of them and promotes the
/// pair {x, y}. The scan order makes the patch deterministic. Returns
/// false when the members already form one fragment (or no such path
/// exists, which a maximal seed rules out).
bool bridge_three_hop_gap(const graph::Graph& g, std::vector<NodeId>& mem,
                          std::vector<std::uint8_t>& is_mem) {
  const auto [labels, q] = graph::subset_components(g, mem);
  if (q <= 1) return false;
  constexpr auto kNoComp = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> comp(g.num_nodes(), kNoComp);
  for (std::size_t i = 0; i < mem.size(); ++i) comp[mem[i]] = labels[i];
  for (NodeId m = 0; m < g.num_nodes(); ++m) {
    if (!is_mem[m]) continue;
    for (const NodeId x : g.neighbors(m)) {
      if (is_mem[x]) continue;
      for (const NodeId y : g.neighbors(x)) {
        if (is_mem[y] || y == x) continue;
        for (const NodeId z : g.neighbors(y)) {
          if (!is_mem[z] || comp[z] == comp[m]) continue;
          is_mem[x] = 1;
          mem.push_back(x);
          is_mem[y] = 1;
          mem.push_back(y);
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

LocalBackbone::LocalBackbone(const DeltaGraph& g,
                             std::span<const std::uint8_t> alive) {
  rebuild(g, alive);
}

void LocalBackbone::grow(std::size_t n) {
  if (in_mis_.size() >= n) return;
  in_mis_.resize(n, 0);
  in_cds_.resize(n, 0);
  cover_.resize(n, 0);
  visit_stamp_.resize(n, 0);
  visit_owner_.resize(n, 0);
}

void LocalBackbone::dec_cover(NodeId v, std::vector<NodeId>& zeros) {
  if (cover_[v] == 0) {
    throw std::logic_error("LocalBackbone: cover underflow (delta not exact?)");
  }
  if (--cover_[v] == 0) zeros.push_back(v);
}

void LocalBackbone::rebuild(const DeltaGraph& g,
                            std::span<const std::uint8_t> alive) {
  const std::size_t n = g.num_nodes();
  if (alive.size() != n) {
    throw std::invalid_argument("LocalBackbone: alive size mismatch");
  }
  grow(n);
  std::fill(in_mis_.begin(), in_mis_.end(), std::uint8_t{0});
  std::fill(cover_.begin(), cover_.end(), std::uint32_t{0});
  mis_size_ = 0;
  // Lowest-id first-fit MIS over the alive subgraph: select v iff no
  // smaller selected neighbor, i.e. cover is still zero when its turn
  // comes. Works unchanged on disconnected graphs.
  for (NodeId v = 0; v < n; ++v) {
    if (!alive[v] || cover_[v] != 0) continue;
    in_mis_[v] = 1;
    ++mis_size_;
    g.for_each_neighbor(v, [&](NodeId u) {
      if (alive[u]) ++cover_[u];
    });
  }
  rebuild_connectors(g, alive);
}

void LocalBackbone::rebuild_connectors(const DeltaGraph& g,
                                       std::span<const std::uint8_t> alive) {
  const std::size_t n = g.num_nodes();
  if (alive.size() != n) {
    throw std::invalid_argument("LocalBackbone: alive size mismatch");
  }
  grow(n);
  std::copy(in_mis_.begin(), in_mis_.end(), in_cds_.begin());
  cds_size_ = mis_size_;
  cds_dirty_ = true;
  if (mis_size_ == 0) return;

  std::vector<NodeId> alive_list;
  alive_list.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (alive[v]) alive_list.push_back(v);
  }
  const graph::Graph full = g.materialize();
  const auto induced = graph::induced_subgraph(full, alive_list);
  const auto [labels, count] = graph::connected_components(induced.graph);
  std::vector<std::vector<NodeId>> comp_nodes(count);
  for (NodeId local = 0; local < induced.mapping.size(); ++local) {
    comp_nodes[labels[local]].push_back(local);
  }
  // Phase 2 per component: the engine needs a connected graph and a
  // maximal seed of it, both of which hold component-wise. The
  // *maintained* MIS is arbitrary-maximal (not BFS-ordered like the
  // paper's phase 1), so member fragments can sit exactly 3 hops apart —
  // a gap no single max-gain connector can merge. When the engine
  // stalls, patch one such gap with a connector pair and restart it;
  // every pair merges >= 2 fragments, so the restarts are bounded by the
  // seed size.
  for (std::size_t c = 0; c < count; ++c) {
    std::size_t members = 0;
    for (const NodeId local : comp_nodes[c]) {
      if (in_mis_[induced.mapping[local]]) ++members;
    }
    if (members <= 1) continue;
    const auto sub = graph::induced_subgraph(induced.graph, comp_nodes[c]);
    std::vector<NodeId> mem;
    mem.reserve(members);
    std::vector<std::uint8_t> is_mem(sub.graph.num_nodes(), 0);
    for (NodeId i = 0; i < sub.mapping.size(); ++i) {
      if (in_mis_[induced.mapping[sub.mapping[i]]]) {
        mem.push_back(i);
        is_mem[i] = 1;
      }
    }
    while (true) {
      ConnectorEngine eng(sub.graph, mem);
      bool stalled = false;
      while (!eng.done()) {
        const auto step = eng.poll();
        if (!step) {
          stalled = true;
          break;
        }
        is_mem[step->node] = 1;
        mem.push_back(step->node);
      }
      if (!stalled) break;
      if (!bridge_three_hop_gap(sub.graph, mem, is_mem)) {
        throw std::logic_error(
            "LocalBackbone: stalled phase 2 with no 3-hop gap (seed not a "
            "maximal independent set of the component?)");
      }
    }
    for (const NodeId local : mem) {
      const NodeId orig = induced.mapping[sub.mapping[local]];
      if (!in_cds_[orig]) {
        in_cds_[orig] = 1;
        ++cds_size_;
      }
    }
  }
}

RepairStats LocalBackbone::on_event(const DeltaGraph& g,
                                    std::span<const std::uint8_t> alive,
                                    NodeId node, NodeChange change,
                                    const EdgeDelta& delta) {
  const std::size_t n = g.num_nodes();
  if (alive.size() != n) {
    throw std::invalid_argument("LocalBackbone: alive size mismatch");
  }
  grow(n);
  RepairStats st;
  if (delta.empty() && change == NodeChange::kNone) return st;
  if (change != NodeChange::kNone && node >= n) {
    throw std::invalid_argument("LocalBackbone: event node out of range");
  }

  std::vector<NodeId> zeros;

  // 1. Removed edges: nodes that lost a dominator. Membership flags are
  // still pre-event here, so in_mis_ of a dying node correctly credits
  // the coverage its former neighbors are losing.
  for (const auto& [u, v] : delta.removed) {
    if (in_mis_[u]) dec_cover(v, zeros);
    if (in_mis_[v]) dec_cover(u, zeros);
  }

  // 2. Death: the node leaves both sets. Its incident edges were all in
  // delta.removed, so neighbor covers are already consistent.
  if (change == NodeChange::kDied) {
    if (in_mis_[node]) {
      in_mis_[node] = 0;
      --mis_size_;
      ++st.mis_removed;
    }
    if (in_cds_[node]) {
      in_cds_[node] = 0;
      --cds_size_;
      ++st.backbone_removed;
      cds_dirty_ = true;
    }
    cover_[node] = 0;
  }

  // 3a. Added edges: count the new adjacencies first so the eviction
  // sweeps below see fully consistent covers, and note MIS-MIS
  // conflicts.
  std::vector<std::pair<NodeId, NodeId>> conflicts;
  for (const auto& [u, v] : delta.added) {
    if (in_mis_[u]) ++cover_[v];
    if (in_mis_[v]) ++cover_[u];
    if (in_mis_[u] && in_mis_[v]) conflicts.emplace_back(u, v);
  }
  // 3b. Evictions: the larger id leaves the MIS but stays in the
  // backbone as a plain connector, so backbone connectivity is
  // untouched. Re-check both memberships — an earlier eviction may have
  // already resolved a conflict chain.
  for (const auto& [u, v] : conflicts) {
    if (!(in_mis_[u] && in_mis_[v])) continue;
    const NodeId w = std::max(u, v);
    in_mis_[w] = 0;
    --mis_size_;
    ++st.mis_removed;
    g.for_each_neighbor(w, [&](NodeId x) {
      if (alive[x]) dec_cover(x, zeros);
    });
  }

  // 4. Birth: a node with no dominator must enter the MIS itself.
  if (change == NodeChange::kBorn) {
    if (!alive[node]) {
      throw std::invalid_argument("LocalBackbone: born node not alive");
    }
    if (cover_[node] == 0) zeros.push_back(node);
  }

  // 5. Completion cascade, ascending ids. Additions only increment
  // covers, so no new zeros can appear: one pass restores maximality
  // (every alive node is in the MIS or has cover >= 1 ⇒ dominated).
  sort_unique(zeros);
  std::vector<NodeId> new_members;
  for (const NodeId x : zeros) {
    if (!alive[x] || in_mis_[x] || cover_[x] != 0) continue;
    in_mis_[x] = 1;
    ++mis_size_;
    ++st.mis_added;
    if (!in_cds_[x]) {
      in_cds_[x] = 1;
      ++cds_size_;
      cds_dirty_ = true;
    }
    g.for_each_neighbor(x, [&](NodeId y) {
      if (alive[y]) ++cover_[y];
    });
    new_members.push_back(x);
  }

  // 6. Connectivity: seed the repair with every backbone node in the
  // closed 1-hop halo of the touched nodes (plus the new MIS members).
  // This seed set provably hits every fragment of a component whose
  // backbone the event split (see the file comment), so the lockstep
  // search below can stop as soon as all seeds unite.
  std::vector<NodeId> touched;
  touched.reserve(2 * (delta.added.size() + delta.removed.size()) + 1);
  for (const auto& [u, v] : delta.added) {
    touched.push_back(u);
    touched.push_back(v);
  }
  for (const auto& [u, v] : delta.removed) {
    touched.push_back(u);
    touched.push_back(v);
  }
  if (change != NodeChange::kNone) touched.push_back(node);
  sort_unique(touched);

  std::vector<NodeId> seeds = std::move(new_members);
  for (const NodeId t : touched) {
    if (alive[t] && in_cds_[t]) seeds.push_back(t);
    g.for_each_neighbor(t, [&](NodeId y) {
      if (alive[y] && in_cds_[y]) seeds.push_back(y);
    });
  }
  ensure_connected(g, alive, seeds, st);
  return st;
}

void LocalBackbone::ensure_connected(const DeltaGraph& g,
                                     std::span<const std::uint8_t> alive,
                                     std::vector<NodeId>& seeds,
                                     RepairStats& st) {
  struct Group {
    std::vector<NodeId> frontier;  ///< BFS queue, index-popped
    std::vector<NodeId> nodes;     ///< every node visited by the group
    std::size_t next = 0;
    bool finished = false;
  };

  std::vector<NodeId> islanded;  // nodes of confirmed partition islands

  while (true) {
    sort_unique(seeds);
    std::vector<NodeId> active;
    active.reserve(seeds.size());
    for (const NodeId s : seeds) {
      if (!alive[s] || !in_cds_[s]) continue;
      if (std::binary_search(islanded.begin(), islanded.end(), s)) continue;
      active.push_back(s);
    }
    // With every at-risk fragment guaranteed to hold a seed, a single
    // surviving seed means no component's backbone is split.
    if (active.size() <= 1) return;

    // Lockstep multi-source BFS over G[backbone]: always expand the
    // smallest group, unite groups when searches meet. Stops when all
    // groups united (connected) or at most one is still expanding (the
    // finished ones are complete fragments to re-attach).
    ++cur_stamp_;
    const auto k = static_cast<std::uint32_t>(active.size());
    graph::UnionFind uf(k);
    std::vector<Group> groups(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      const NodeId s = active[i];
      visit_stamp_[s] = cur_stamp_;
      visit_owner_[s] = i;
      groups[i].frontier.push_back(s);
      groups[i].nodes.push_back(s);
    }
    std::size_t live = k;
    std::size_t unfinished = k;
    while (live > 1 && unfinished > 1) {
      std::uint32_t pick = k;
      std::size_t best = std::numeric_limits<std::size_t>::max();
      for (std::uint32_t i = 0; i < k; ++i) {
        if (uf.find(i) != i || groups[i].finished) continue;
        if (groups[i].nodes.size() < best) {
          best = groups[i].nodes.size();
          pick = i;
        }
      }
      if (pick == k) break;  // defensive: nothing left to expand
      const NodeId x = groups[pick].frontier[groups[pick].next++];
      std::uint32_t self = pick;
      g.for_each_neighbor(x, [&](NodeId y) {
        if (!alive[y] || !in_cds_[y]) return;
        if (visit_stamp_[y] != cur_stamp_) {
          visit_stamp_[y] = cur_stamp_;
          visit_owner_[y] = self;
          groups[self].frontier.push_back(y);
          groups[self].nodes.push_back(y);
          return;
        }
        const std::uint32_t other = uf.find(visit_owner_[y]);
        if (other == self) return;
        // Two searches met: unite, folding the loser's state into
        // whichever index the union-find keeps as root.
        uf.unite(other, self);
        const std::uint32_t root = uf.find(self);
        const std::uint32_t loser = root == self ? other : self;
        Group& w = groups[root];
        Group& l = groups[loser];
        w.frontier.insert(w.frontier.end(),
                          l.frontier.begin() + static_cast<long>(l.next),
                          l.frontier.end());
        w.nodes.insert(w.nodes.end(), l.nodes.begin(), l.nodes.end());
        if (!w.finished || !l.finished) {
          if (!w.finished && !l.finished) --unfinished;
          w.finished = false;
        }
        l = Group{};
        --live;
        self = root;
      });
      Group& cur = groups[self];
      if (cur.next >= cur.frontier.size() && !cur.finished) {
        cur.finished = true;
        --unfinished;
      }
    }
    for (std::uint32_t i = 0; i < k; ++i) {
      if (uf.find(i) == i) st.scope += groups[i].nodes.size();
    }
    if (live <= 1) return;  // every seed in one fragment ⇒ connected

    // Finished groups are complete fragments: bridge each back through
    // <= 3 hops, or prove it a partition island (no backbone node within
    // 3 hops ⇒ by the MIS adjacency lemma it is the entire backbone of
    // its own component).
    std::vector<std::uint32_t> group_root(k);
    for (std::uint32_t i = 0; i < k; ++i) group_root[i] = uf.find(i);
    bool any_bridge = false;
    for (std::uint32_t r = 0; r < k; ++r) {
      if (group_root[r] != r || !groups[r].finished) continue;
      std::vector<NodeId>& frag = groups[r].nodes;
      std::sort(frag.begin(), frag.end());
      NodeId bridge[2] = {0, 0};
      const std::size_t bn =
          find_bridge(g, alive, frag, group_root, r, bridge);
      if (bn == 0) {
        islanded.insert(islanded.end(), frag.begin(), frag.end());
        std::sort(islanded.begin(), islanded.end());
        ++st.islands;
        continue;
      }
      for (std::size_t b = 0; b < bn; ++b) {
        in_cds_[bridge[b]] = 1;
        ++cds_size_;
        ++st.connectors_added;
        cds_dirty_ = true;
        seeds.push_back(bridge[b]);
      }
      any_bridge = true;
    }
    // No bridge added: everything left is one (possibly unfinished)
    // group plus self-contained islands — per-component connected.
    if (!any_bridge) return;
  }
}

std::size_t LocalBackbone::find_bridge(
    const DeltaGraph& g, std::span<const std::uint8_t> alive,
    const std::vector<NodeId>& fragment,
    const std::vector<std::uint32_t>& group_root, std::uint32_t root,
    NodeId out[2]) const {
  const auto in_fragment = [&](NodeId z) {
    return visit_stamp_[z] == cur_stamp_ && group_root[visit_owner_[z]] == root;
  };
  std::vector<NodeId> nf;
  std::vector<NodeId> nx;
  std::vector<NodeId> ny;
  // Distance 2: fragment — x — z with x outside the backbone and z a
  // backbone node of another fragment; x alone re-attaches us.
  // Iteration is (f asc, x asc, z asc) so the choice is deterministic.
  for (const NodeId f : fragment) {
    fill_neighbors(g, f, nf);
    for (const NodeId x : nf) {
      if (!alive[x] || in_cds_[x]) continue;
      fill_neighbors(g, x, nx);
      for (const NodeId z : nx) {
        if (!alive[z] || !in_cds_[z] || in_fragment(z)) continue;
        out[0] = x;
        return 1;
      }
    }
  }
  // Distance 3: fragment — x — y — z, connector pair {x, y}.
  for (const NodeId f : fragment) {
    fill_neighbors(g, f, nf);
    for (const NodeId x : nf) {
      if (!alive[x] || in_cds_[x]) continue;
      fill_neighbors(g, x, nx);
      for (const NodeId y : nx) {
        if (!alive[y] || in_cds_[y]) continue;
        fill_neighbors(g, y, ny);
        for (const NodeId z : ny) {
          if (!alive[z] || !in_cds_[z] || in_fragment(z)) continue;
          out[0] = x;
          out[1] = y;
          return 2;
        }
      }
    }
  }
  return 0;
}

const std::vector<NodeId>& LocalBackbone::cds() const {
  if (cds_dirty_) {
    cds_cache_.clear();
    cds_cache_.reserve(cds_size_);
    for (NodeId v = 0; v < in_cds_.size(); ++v) {
      if (in_cds_[v]) cds_cache_.push_back(v);
    }
    cds_dirty_ = false;
  }
  return cds_cache_;
}

std::vector<NodeId> LocalBackbone::mis() const {
  std::vector<NodeId> out;
  out.reserve(mis_size_);
  for (NodeId v = 0; v < in_mis_.size(); ++v) {
    if (in_mis_[v]) out.push_back(v);
  }
  return out;
}

bool LocalBackbone::envelope_exceeded(double factor,
                                      std::size_t bias) const noexcept {
  return static_cast<double>(cds_size_) >
         factor * static_cast<double>(mis_size_) + static_cast<double>(bias);
}

}  // namespace mcds::core
