#pragma once

#include <cstddef>

/// \file bounds.hpp
/// The paper's closed-form bounds, in one place, so benches and tests
/// compare measurements against the exact fractions used in the proofs
/// rather than rounded decimals.

namespace mcds::core::bounds {

/// φ_n of Section II: the maximum number of independent points packable
/// in the neighborhood of an n-star (Theorem 3).
///   φ_n = 3n + 2            if n <= 2
///   φ_n = min(3n + 3, 21)   if n >= 3
/// Precondition: n >= 1.
[[nodiscard]] std::size_t phi(std::size_t n);

/// Theorem 6 / Corollary 7: α(G) <= (11/3)·γ_c(G) + 1 for connected UDG
/// with >= 2 nodes. Returns the right-hand side.
[[nodiscard]] double alpha_upper_bound(std::size_t gamma_c) noexcept;

/// Theorem 6 variant when the connected set intersects I:
/// |I(V)| <= 11n/3 - 1.
[[nodiscard]] double alpha_upper_bound_intersecting(
    std::size_t gamma_c) noexcept;

/// Theorem 8: bound on the WAF CDS, 7⅓·γ_c.
[[nodiscard]] double waf_upper_bound(std::size_t gamma_c) noexcept;

/// Theorem 10: bound on the greedy-connector CDS, 6 7/18·γ_c.
[[nodiscard]] double greedy_upper_bound(std::size_t gamma_c) noexcept;

/// Historical bound from [10]: 8·γ_c - 1 (via α <= 4γ_c + 1).
[[nodiscard]] double waf_bound_2004(std::size_t gamma_c) noexcept;

/// Historical bound from [12]: 7.6·γ_c + 1.4 (via α <= 3.8γ_c + 1.2).
[[nodiscard]] double waf_bound_2006(std::size_t gamma_c) noexcept;

/// Section V conjectured bounds (if 3(n+1) packing is optimal):
/// WAF <= 6·γ_c, greedy <= 5.5·γ_c.
[[nodiscard]] double waf_conjectured_bound(std::size_t gamma_c) noexcept;
[[nodiscard]] double greedy_conjectured_bound(std::size_t gamma_c) noexcept;

/// Lower bound on γ_c derivable from any independent set of size
/// \p independent_size in a connected UDG with >= 2 nodes (inverts
/// Corollary 7): γ_c >= ceil(3(|I| - 1)/11). Returns at least 1.
[[nodiscard]] std::size_t gamma_c_lower_bound_from_independent(
    std::size_t independent_size) noexcept;

/// The constant approximation-ratio guarantees as doubles.
inline constexpr double kWafRatio = 22.0 / 3.0;        // 7 1/3
inline constexpr double kGreedyRatio = 115.0 / 18.0;   // 6 7/18
inline constexpr double kAlphaSlope = 11.0 / 3.0;      // 3 2/3

}  // namespace mcds::core::bounds
