#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/delta_graph.hpp"
#include "graph/graph.hpp"

/// \file local_repair.hpp
/// Localized maintenance of a two-phased CDS under streaming edge
/// deltas. The static pipeline (phase-1 MIS, phase-2 connectors) costs
/// O(n + m) per run; LocalBackbone instead repairs the structure inside
/// the neighborhood an event actually touched:
///
///  * MIS repair is driven by per-node dominator counts
///    (cover[v] = #alive MIS neighbors of v). Removed edges decrement,
///    added edges increment, an added MIS–MIS edge deterministically
///    evicts the larger id (which stays behind as a plain connector),
///    and every node whose count reaches zero re-enters the MIS in
///    ascending id order — all work stays within two hops of the
///    touched nodes, and the invariant "cover[v] = 0 ⇔ v ∈ MIS" keeps
///    the set a maximal independent set (hence dominating) of the alive
///    graph after every event.
///
///  * Connectivity repair seeds a lockstep multi-source BFS over the
///    backbone from every backbone node in the 1-hop halo of the
///    touched nodes. Balanced expansion (always grow the smallest
///    search) with union-on-meet costs O(size of the small fragments),
///    not O(component): the surviving giant fragment is explored only
///    as far as the fragments racing it. Completed fragments are
///    re-attached through a ≤3-hop bridge (one or two fresh
///    connectors); by the MIS 3-hop adjacency lemma a fragment with no
///    such bridge provably *is* the complete backbone of its own
///    topology component (a partition island), mirroring the CDS-forest
///    semantics of check_cds_components.
///
/// The per-event cost is O(Σ deg(touched) + repaired scope); the engine
/// layer (src/dyn) adds the 4|MIS|+12 envelope policy and compaction on
/// top.

namespace mcds::core {

/// How the event changed the event node's liveness.
enum class NodeChange : std::uint8_t {
  kNone,  ///< position-only event (or pure edge churn)
  kBorn,  ///< node inserted or revived (alive after the event)
  kDied,  ///< node erased (dead after the event)
};

/// Per-event repair accounting.
struct RepairStats {
  std::size_t mis_added = 0;
  std::size_t mis_removed = 0;
  std::size_t connectors_added = 0;
  std::size_t backbone_removed = 0;
  std::size_t scope = 0;    ///< backbone nodes explored by the repair
  std::size_t islands = 0;  ///< fragments confirmed as partition islands

  [[nodiscard]] bool changed() const noexcept {
    return mis_added != 0 || mis_removed != 0 || connectors_added != 0 ||
           backbone_removed != 0;
  }
};

/// Incrementally maintained MIS + connector backbone over a DeltaGraph
/// and a per-node liveness vector. After construction and after every
/// on_event() the tracked set is a valid CDS of each connected
/// component of the alive subgraph (a CDS forest).
class LocalBackbone {
 public:
  LocalBackbone() = default;

  /// Solves from scratch over the alive subgraph of \p g.
  LocalBackbone(const graph::DeltaGraph& g,
                std::span<const std::uint8_t> alive);

  /// From-scratch solve: lowest-id first-fit MIS over the alive nodes,
  /// then per-component connectors via the phase-2 engine. O(n + m).
  void rebuild(const graph::DeltaGraph& g,
               std::span<const std::uint8_t> alive);

  /// Keeps the current MIS and re-derives the connectors from scratch
  /// (per component). Used by the envelope policy: the result satisfies
  /// |B| <= 2|MIS| per component. O(n + m).
  void rebuild_connectors(const graph::DeltaGraph& g,
                          std::span<const std::uint8_t> alive);

  /// Repairs the backbone after one event. \p g and \p alive must
  /// already reflect the post-event state; \p delta holds the exact
  /// edge changes (canonical u < v); \p node is the event node for
  /// kBorn/kDied changes (ignored for kNone).
  RepairStats on_event(const graph::DeltaGraph& g,
                       std::span<const std::uint8_t> alive, graph::NodeId node,
                       NodeChange change, const graph::EdgeDelta& delta);

  [[nodiscard]] std::size_t mis_size() const noexcept { return mis_size_; }
  [[nodiscard]] std::size_t cds_size() const noexcept { return cds_size_; }
  [[nodiscard]] bool in_mis(graph::NodeId v) const {
    return in_mis_.at(v) != 0;
  }
  [[nodiscard]] bool in_cds(graph::NodeId v) const {
    return in_cds_.at(v) != 0;
  }

  /// The backbone, ascending. Cached; invalidated by mutations.
  [[nodiscard]] const std::vector<graph::NodeId>& cds() const;

  /// The MIS, ascending (always recomputed from the flags).
  [[nodiscard]] std::vector<graph::NodeId> mis() const;

  /// True when |B| > factor·|MIS| + bias — the caller should trigger
  /// rebuild_connectors().
  [[nodiscard]] bool envelope_exceeded(double factor,
                                       std::size_t bias) const noexcept;

 private:
  void grow(std::size_t n);
  void dec_cover(graph::NodeId v, std::vector<graph::NodeId>& zeros);
  /// Restores per-component backbone connectivity starting from
  /// \p seeds (backbone nodes). May add connectors.
  void ensure_connected(const graph::DeltaGraph& g,
                        std::span<const std::uint8_t> alive,
                        std::vector<graph::NodeId>& seeds, RepairStats& st);
  /// Finds a <=3-hop bridge from the complete fragment \p fragment
  /// (whose nodes carry cur_stamp_ / group root \p root) to any
  /// backbone node outside it. Returns 0 (none: partition island), 1 or
  /// 2 connectors in \p out.
  std::size_t find_bridge(const graph::DeltaGraph& g,
                          std::span<const std::uint8_t> alive,
                          const std::vector<graph::NodeId>& fragment,
                          const std::vector<std::uint32_t>& group_root,
                          std::uint32_t root, graph::NodeId out[2]) const;

  std::vector<std::uint8_t> in_mis_;
  std::vector<std::uint8_t> in_cds_;
  /// cover_[v] = number of alive MIS members adjacent to v.
  std::vector<std::uint32_t> cover_;
  std::size_t mis_size_ = 0;
  std::size_t cds_size_ = 0;

  /// Epoch-stamped visited marks for the lockstep search — persistent
  /// so per-event repair allocates nothing on the hot path.
  mutable std::vector<std::uint64_t> visit_stamp_;
  mutable std::vector<std::uint32_t> visit_owner_;
  mutable std::uint64_t cur_stamp_ = 0;

  mutable std::vector<graph::NodeId> cds_cache_;
  mutable bool cds_dirty_ = true;
};

}  // namespace mcds::core
