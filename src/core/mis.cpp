#include "core/mis.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mcds::core {

MisResult first_fit_mis(const Graph& g, std::span<const NodeId> order) {
  const graph::FrozenGraph fg(g);
  MisResult r;
  r.in_mis.assign(fg.num_nodes(), false);
  std::vector<bool> seen(fg.num_nodes(), false);
  for (const NodeId u : order) {
    if (u >= fg.num_nodes()) {
      throw std::invalid_argument("first_fit_mis: node out of range");
    }
    if (seen[u]) {
      throw std::invalid_argument("first_fit_mis: duplicate node in order");
    }
    seen[u] = true;
    bool blocked = false;
    for (const NodeId v : fg.neighbors(u)) {
      if (r.in_mis[v]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      r.in_mis[u] = true;
      r.mis.push_back(u);
    }
  }
  return r;
}

MisResult bfs_first_fit_mis(const Graph& g, NodeId root) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("bfs_first_fit_mis: empty graph");
  }
  graph::BfsResult bfs = graph::bfs(g, root);
  if (bfs.reached() != g.num_nodes()) {
    throw std::invalid_argument(
        "bfs_first_fit_mis: graph must be connected");
  }
  MisResult r = first_fit_mis(g, bfs.order);
  r.bfs = std::move(bfs);
  return r;
}

MisResult lowest_id_mis(const Graph& g) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  return first_fit_mis(g, order);
}

MisResult max_degree_mis(const Graph& g) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  return first_fit_mis(g, order);
}

}  // namespace mcds::core
