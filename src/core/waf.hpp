#pragma once

#include <vector>

#include "core/mis.hpp"
#include "obs/obs.hpp"

/// \file waf.hpp
/// The two-phased CDS algorithm of Wan–Alzoubi–Frieder [10], whose
/// approximation ratio Section III of the paper improves to 7⅓.
///
/// Phase 1: BFS first-fit MIS (dominators).
/// Phase 2: let s be the neighbor of the root adjacent to the most
/// dominators; the connectors are s plus the BFS-tree parents of every
/// dominator not adjacent to s.

namespace mcds::core {

/// Output of the WAF construction.
struct WafResult {
  MisResult phase1;                ///< dominators and the BFS structure
  NodeId s = 0;                    ///< the distinguished neighbor of root
  std::vector<NodeId> connectors;  ///< phase-2 connectors (C), s first
  std::vector<NodeId> cds;         ///< I ∪ C, ascending node id
};

/// Runs the WAF algorithm from \p root. Requires a connected graph with
/// at least one node; throws std::invalid_argument otherwise. For a
/// single-node graph the CDS is that node.
/// \p obs (null sinks by default) times the two phases and counts the
/// phase-1 MIS and phase-2 connector sizes under "waf.*".
[[nodiscard]] WafResult waf_cds(const Graph& g, NodeId root = 0,
                                const obs::Obs& obs = {});

/// WAF with incremental connectivity pruning: maintains the components
/// of I ∪ C in a union-find while connectors are added, and skips the
/// parent invitation of any dominator that is already connected to s's
/// component. Every parent it does add is adjacent to an
/// earlier-selected dominator (BFS first-fit property), so processing
/// dominators in selection order keeps the result a valid CDS; it is
/// never larger than waf_cds's and shares the same s and phase 1.
[[nodiscard]] WafResult waf_cds_pruned(const Graph& g, NodeId root = 0);

}  // namespace mcds::core
