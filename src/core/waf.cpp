#include "core/waf.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/union_find.hpp"
#include "obs/timer.hpp"

namespace mcds::core {

namespace {

// s := neighbor of the root adjacent to the largest number of
// dominators (ties broken toward the smaller id for determinism).
[[nodiscard]] NodeId pick_s(const graph::FrozenGraph& g, NodeId root,
                            const std::vector<bool>& in_mis) {
  NodeId best = graph::kNoNode;
  std::size_t best_count = 0;
  for (const NodeId v : g.neighbors(root)) {
    std::size_t count = 0;
    for (const NodeId w : g.neighbors(v)) {
      if (in_mis[w]) ++count;
    }
    if (best == graph::kNoNode || count > best_count) {
      best = v;
      best_count = count;
    }
  }
  // Connected graph with >= 2 nodes: the root has a neighbor.
  return best;
}

}  // namespace

WafResult waf_cds(const Graph& g, NodeId root, const obs::Obs& obs) {
  WafResult r;
  {
    obs::ScopedTimer timer(obs, "waf.phase1_mis");
    r.phase1 = bfs_first_fit_mis(g, root);
  }
  if (g.num_nodes() == 1) {
    r.s = root;
    r.cds = {root};
    return r;
  }
  obs::ScopedTimer timer(obs, "waf.phase2_connect");

  const graph::FrozenGraph fg(g);
  const auto& in_mis = r.phase1.in_mis;
  r.s = pick_s(fg, root, in_mis);

  std::vector<bool> in_cds = in_mis;  // start from the dominators
  std::vector<bool> adjacent_to_s(fg.num_nodes(), false);
  adjacent_to_s[r.s] = true;  // covers the (impossible) s ∈ I case cleanly
  for (const NodeId w : fg.neighbors(r.s)) adjacent_to_s[w] = true;

  const auto add_connector = [&](NodeId c) {
    if (!in_cds[c]) {
      in_cds[c] = true;
      r.connectors.push_back(c);
    }
  };
  add_connector(r.s);
  for (const NodeId u : r.phase1.mis) {
    if (adjacent_to_s[u]) continue;  // u ∈ I(s): s already connects it
    const NodeId p = r.phase1.bfs.parent[u];
    if (p == graph::kNoNode) {
      // Only the root has no parent, and the root is adjacent to s.
      throw std::logic_error("waf_cds: non-root dominator without parent");
    }
    add_connector(p);
  }

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_cds[v]) r.cds.push_back(v);
  }
  if (obs.metrics) {
    obs.metrics->counter("waf.mis_size").add(r.phase1.mis.size());
    obs.metrics->counter("waf.connectors").add(r.connectors.size());
  }
  return r;
}

WafResult waf_cds_pruned(const Graph& g, NodeId root) {
  WafResult r;
  r.phase1 = bfs_first_fit_mis(g, root);
  if (g.num_nodes() == 1) {
    r.s = root;
    r.cds = {root};
    return r;
  }

  const graph::FrozenGraph fg(g);
  const auto& in_mis = r.phase1.in_mis;
  r.s = pick_s(fg, root, in_mis);

  std::vector<bool> in_cds = in_mis;
  graph::UnionFind uf(g.num_nodes());
  // Joins x to the CDS and merges it with every CDS member it touches,
  // so uf tracks the components of G[I ∪ C] as C grows.
  const auto join = [&](NodeId x) {
    if (!in_cds[x]) {
      in_cds[x] = true;
      if (!in_mis[x]) r.connectors.push_back(x);
    }
    for (const NodeId w : fg.neighbors(x)) {
      if (in_cds[w]) uf.unite(x, w);
    }
  };
  join(r.s);  // s ∉ I (s neighbors the root, root ∈ I), so C starts at {s}

  // Dominators in phase-1 selection order. Induction (BFS first-fit):
  // each added parent is adjacent to an earlier-selected dominator,
  // which is already in s's component, so by the time a dominator is
  // inspected its connectivity status in uf is final — skipping the
  // invitation when it already holds is sound.
  for (const NodeId u : r.phase1.mis) {
    if (uf.same(u, r.s)) continue;  // covered by I(s) or an earlier parent
    const NodeId p = r.phase1.bfs.parent[u];
    if (p == graph::kNoNode) {
      // Only the root has no parent, and the root is adjacent to s.
      throw std::logic_error(
          "waf_cds_pruned: non-root dominator without parent");
    }
    join(p);
    if (!uf.same(u, r.s)) {
      throw std::logic_error(
          "waf_cds_pruned: parent did not connect its dominator");
    }
  }

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_cds[v]) r.cds.push_back(v);
  }
  return r;
}

}  // namespace mcds::core
