#include "core/waf.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcds::core {

WafResult waf_cds(const Graph& g, NodeId root) {
  WafResult r;
  r.phase1 = bfs_first_fit_mis(g, root);
  if (g.num_nodes() == 1) {
    r.s = root;
    r.cds = {root};
    return r;
  }

  const auto& in_mis = r.phase1.in_mis;
  // s := neighbor of the root adjacent to the largest number of
  // dominators (ties broken toward the smaller id for determinism).
  NodeId best = graph::kNoNode;
  std::size_t best_count = 0;
  for (const NodeId v : g.neighbors(root)) {
    std::size_t count = 0;
    for (const NodeId w : g.neighbors(v)) {
      if (in_mis[w]) ++count;
    }
    if (best == graph::kNoNode || count > best_count) {
      best = v;
      best_count = count;
    }
  }
  // Connected graph with >= 2 nodes: the root has a neighbor.
  r.s = best;

  std::vector<bool> in_cds = in_mis;  // start from the dominators
  std::vector<bool> adjacent_to_s(g.num_nodes(), false);
  adjacent_to_s[r.s] = true;  // covers the (impossible) s ∈ I case cleanly
  for (const NodeId w : g.neighbors(r.s)) adjacent_to_s[w] = true;

  const auto add_connector = [&](NodeId c) {
    if (!in_cds[c]) {
      in_cds[c] = true;
      r.connectors.push_back(c);
    }
  };
  add_connector(r.s);
  for (const NodeId u : r.phase1.mis) {
    if (adjacent_to_s[u]) continue;  // u ∈ I(s): s already connects it
    const NodeId p = r.phase1.bfs.parent[u];
    if (p == graph::kNoNode) {
      // Only the root has no parent, and the root is adjacent to s.
      throw std::logic_error("waf_cds: non-root dominator without parent");
    }
    add_connector(p);
  }

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_cds[v]) r.cds.push_back(v);
  }
  return r;
}

}  // namespace mcds::core
