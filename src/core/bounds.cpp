#include "core/bounds.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcds::core::bounds {

std::size_t phi(std::size_t n) {
  if (n == 0) throw std::invalid_argument("phi: n must be >= 1");
  if (n <= 2) return 3 * n + 2;
  return std::min<std::size_t>(3 * n + 3, 21);
}

double alpha_upper_bound(std::size_t gamma_c) noexcept {
  return kAlphaSlope * static_cast<double>(gamma_c) + 1.0;
}

double alpha_upper_bound_intersecting(std::size_t gamma_c) noexcept {
  return kAlphaSlope * static_cast<double>(gamma_c) - 1.0;
}

double waf_upper_bound(std::size_t gamma_c) noexcept {
  return kWafRatio * static_cast<double>(gamma_c);
}

double greedy_upper_bound(std::size_t gamma_c) noexcept {
  return kGreedyRatio * static_cast<double>(gamma_c);
}

double waf_bound_2004(std::size_t gamma_c) noexcept {
  return 8.0 * static_cast<double>(gamma_c) - 1.0;
}

double waf_bound_2006(std::size_t gamma_c) noexcept {
  return 7.6 * static_cast<double>(gamma_c) + 1.4;
}

double waf_conjectured_bound(std::size_t gamma_c) noexcept {
  return 6.0 * static_cast<double>(gamma_c);
}

double greedy_conjectured_bound(std::size_t gamma_c) noexcept {
  return 5.5 * static_cast<double>(gamma_c);
}

std::size_t gamma_c_lower_bound_from_independent(
    std::size_t independent_size) noexcept {
  if (independent_size <= 1) return 1;
  // ceil(3(|I| - 1) / 11)
  const std::size_t num = 3 * (independent_size - 1);
  return std::max<std::size_t>(1, (num + 10) / 11);
}

}  // namespace mcds::core::bounds
