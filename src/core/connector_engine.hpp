#pragma once

#include <queue>
#include <span>
#include <vector>

#include "core/greedy_connect.hpp"
#include "graph/union_find.hpp"
#include "obs/obs.hpp"

/// \file connector_engine.hpp
/// Incremental engine behind phase 2 of the Section IV algorithm. The
/// reference implementation re-labels the components of G[I ∪ C] and
/// rescans every node's neighborhood on every round — O(rounds·(n+m)).
/// This engine maintains the components in a union-find that only merges
/// when a connector is added, and keeps candidates in a lazy max-gain
/// priority queue, giving near-linear total work on UDG workloads.
///
/// Exactness of the lazy queue rests on two facts about the gain
/// gain(w) = (#distinct components of G[members] adjacent to w) − 1:
///  1. For a *fixed* member set, component merges never increase any
///     candidate's gain (two adjacent components collapsing into one can
///     only lower the distinct count), so stale queue entries are upper
///     bounds and can be re-scored on pop.
///  2. Adding a member c can raise gains, but only for neighbors of c
///     (a node not adjacent to c sees only merges). The engine therefore
///     re-scores and re-pushes every non-member neighbor of each added
///     connector, restoring the upper-bound invariant.
/// With the heap ordered by (gain desc, node id asc), the first popped
/// entry whose stored gain matches its re-computed gain is exactly the
/// node the reference picks: maximum gain, ties to the smallest id. The
/// differential test suite pins trace-for-trace equality.

namespace mcds::core {

/// Incremental max-gain connector selection over a growing member set.
class ConnectorEngine {
 public:
  /// Seeds the engine with \p members (phase-1 dominators; any duplicate
  /// or out-of-range node throws std::invalid_argument). Member-member
  /// edges are united immediately, so the seed need not be independent.
  /// \p obs (null sinks by default) counts union-find finds/merges and
  /// lazy-queue pops/stale re-scores under "connector_engine.*".
  ConnectorEngine(const Graph& g, std::span<const NodeId> members,
                  const obs::Obs& obs = {});

  /// Number of connected components of G[members] right now.
  [[nodiscard]] std::size_t components() const noexcept { return q_; }

  /// True once one component remains (phase 2 is finished).
  [[nodiscard]] bool done() const noexcept { return q_ <= 1; }

  /// Selects the maximum-gain connector (ties toward the smaller node
  /// id), adds it to the member set and merges the components it touches.
  /// Throws std::logic_error if no positive-gain node exists although
  /// more than one component remains (the seed was not a maximal
  /// independent set of a connected graph — cf. Lemma 9).
  GreedyStep select_next();

 private:
  struct Entry {
    std::uint32_t gain;
    NodeId node;
    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.gain != b.gain) return a.gain < b.gain;  // max-gain first
      return a.node > b.node;                        // then smallest id
    }
  };

  /// #distinct member components adjacent to \p w (stamp-marked roots).
  [[nodiscard]] std::size_t distinct_adjacent(NodeId w);
  void push_if_candidate(NodeId w);

  const Graph& g_;
  graph::UnionFind uf_;
  std::vector<bool> member_;
  std::priority_queue<Entry> heap_;
  std::vector<std::uint64_t> mark_;  ///< per-root stamps for distinct counts
  std::uint64_t stamp_ = 0;
  std::size_t q_ = 0;  ///< current component count of G[members]
  /// Pre-resolved metric sinks (nullptr when observability is off).
  obs::Counter* c_uf_finds_ = nullptr;
  obs::Counter* c_uf_merges_ = nullptr;
  obs::Counter* c_pops_ = nullptr;
  obs::Counter* c_stale_ = nullptr;
  obs::Counter* c_retired_ = nullptr;
};

}  // namespace mcds::core
