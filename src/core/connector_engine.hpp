#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/greedy_connect.hpp"
#include "graph/union_find.hpp"
#include "obs/obs.hpp"

/// \file connector_engine.hpp
/// Incremental engine behind phase 2 of the Section IV algorithm. The
/// reference implementation re-labels the components of G[I ∪ C] and
/// rescans every node's neighborhood on every round — O(rounds·(n+m)).
/// This engine maintains the components in a union-find that only merges
/// when a connector is added, and keeps candidates in a lazy max-gain
/// priority queue, giving near-linear total work on UDG workloads.
///
/// Exactness of the lazy queue rests on two facts about the gain
/// gain(w) = (#distinct components of G[members] adjacent to w) − 1:
///  1. For a *fixed* member set, component merges never increase any
///     candidate's gain (two adjacent components collapsing into one can
///     only lower the distinct count), so stale queue entries are upper
///     bounds and can be re-scored on pop.
///  2. Adding a member c can raise gains, but only for neighbors of c
///     (a node not adjacent to c sees only merges). The engine therefore
///     re-scores and re-pushes every non-member neighbor of each added
///     connector, restoring the upper-bound invariant.
/// With the heap ordered by (score desc, node id asc), the first popped
/// entry whose stored score matches its re-computed score is exactly the
/// node the reference picks: maximum score, ties to the smallest id. The
/// differential test suite pins trace-for-trace equality.
///
/// The engine is a template over two axes:
///  * the adjacency view (graph::FrozenGraph for the CSR hot path,
///    graph::NestedView for the retained vector-of-vectors layout), so
///    the locality benchmarks run the *same* selection code over both
///    storage schemes;
///  * the *selection policy*, which owns the scoring function (how a
///    merge count ranks against other candidates — unit gain, or gain
///    per unit of node weight) and the feasibility predicate (when the
///    phase is done). UnitGainPolicy reproduces the paper's plain-CDS
///    selection bit for bit; NodeWeightedGainPolicy ranks by
///    gain/weight for the node-weighted (1,m)-CDS family (kmcds.hpp).
/// ConnectorEngine is the CSR + unit-gain instantiation every plain-CDS
/// production caller uses.
///
/// Policy requirements (duck-typed; both shipped policies model it):
///   using Score = <totally ordered, equality-comparable value type>;
///   Score score(NodeId w, std::size_t distinct) const;
///       priority of adding w given it currently touches `distinct`
///       member components (only called with distinct >= 2). Must be
///       non-increasing in member-set growth for a fixed w — i.e.
///       monotone in `distinct` — or the lazy queue loses exactness.
///   bool done(std::size_t q) const;
///       feasibility target: true once q components are acceptable.

namespace mcds::core {

/// The paper's plain-CDS policy: score = gain = distinct − 1, run until
/// one component remains. Selection order is bit-identical to the
/// pre-policy engine (same Score type, same comparisons).
struct UnitGainPolicy {
  using Score = std::uint32_t;
  [[nodiscard]] Score score(NodeId /*w*/, std::size_t distinct) const noexcept {
    return static_cast<Score>(distinct - 1);
  }
  [[nodiscard]] bool done(std::size_t q) const noexcept { return q <= 1; }
};

/// Node-weighted selection for the weighted (k,m)-CDS family: score =
/// gain / weight(w), so a cheap node that merges two components beats an
/// expensive one that merges three when the price ratio says so. Weights
/// must be positive; ties (equal ratios) still resolve to the smallest
/// node id via the engine's ordering.
struct NodeWeightedGainPolicy {
  std::span<const double> weight;  ///< weight[v] > 0, one per node
  using Score = double;
  [[nodiscard]] Score score(NodeId w, std::size_t distinct) const {
    return static_cast<double>(distinct - 1) / weight[w];
  }
  [[nodiscard]] bool done(std::size_t q) const noexcept { return q <= 1; }
};

/// Incremental max-score connector selection over a growing member set.
/// \tparam View a by-value adjacency view: num_nodes(), neighbors(u).
/// \tparam Policy the scoring/feasibility policy (see file comment).
template <class View, class Policy = UnitGainPolicy>
class BasicConnectorEngine {
 public:
  /// Seeds the engine with \p members (phase-1 dominators; any duplicate
  /// or out-of-range node throws std::invalid_argument). Member-member
  /// edges are united immediately, so the seed need not be independent.
  /// \p obs (null sinks by default) counts union-find finds/merges and
  /// lazy-queue pops/stale re-scores under "connector_engine.*".
  BasicConnectorEngine(View g, std::span<const NodeId> members,
                       Policy policy = {}, const obs::Obs& obs = {})
      : g_(g),
        policy_(std::move(policy)),
        uf_(g.num_nodes()),
        member_(g.num_nodes(), false),
        mark_(g.num_nodes(), 0),
        c_uf_finds_(obs.counter("connector_engine.uf_finds")),
        c_uf_merges_(obs.counter("connector_engine.uf_merges")),
        c_pops_(obs.counter("connector_engine.pops")),
        c_stale_(obs.counter("connector_engine.stale_rescores")),
        c_retired_(obs.counter("connector_engine.retired")) {
    const std::size_t n = g_.num_nodes();
    for (const NodeId u : members) {
      if (u >= n) throw std::invalid_argument("ConnectorEngine: bad node");
      if (member_[u]) {
        throw std::invalid_argument("ConnectorEngine: duplicate member");
      }
      member_[u] = true;
    }
    q_ = members.size();
    // Unite member-member edges. For an independent seed (the intended
    // use) this is a no-op scan; for arbitrary seeds it reproduces the
    // component structure subset_components would report.
    for (const NodeId u : members) {
      for (const NodeId v : g_.neighbors(u)) {
        if (v < u && member_[v] && uf_.unite(u, v)) {
          --q_;
          if (c_uf_merges_) c_uf_merges_->add();
        }
      }
    }
    if (policy_.done(q_)) return;
    // Seed the lazy queue: per Lemma 9 a positive-gain node always exists
    // while q > 1, and any node that becomes positive later is a neighbor
    // of an added connector, which select_next() refreshes.
    for (NodeId w = 0; w < n; ++w) {
      if (!member_[w]) push_if_candidate(w);
    }
  }

  /// Convenience overload for the default-constructed policy, keeping
  /// the pre-policy (g, members, obs) call sites source-compatible.
  BasicConnectorEngine(View g, std::span<const NodeId> members,
                       const obs::Obs& obs)
      : BasicConnectorEngine(g, members, Policy{}, obs) {}

  /// Number of connected components of G[members] right now.
  [[nodiscard]] std::size_t components() const noexcept { return q_; }

  /// True once the policy's feasibility target holds (plain CDS: one
  /// component remains — phase 2 is finished).
  [[nodiscard]] bool done() const noexcept { return policy_.done(q_); }

  /// Selects the maximum-score connector (ties toward the smaller node
  /// id), adds it to the member set and merges the components it touches.
  /// Throws std::logic_error if no positive-gain node exists although
  /// the feasibility target is unmet (the seed was not a maximal
  /// independent set of a connected graph — cf. Lemma 9).
  GreedyStep select_next() {
    if (auto step = poll()) return *step;
    throw std::logic_error(
        "ConnectorEngine: no positive-gain node although q > 1 "
        "(input MIS is not maximal or graph is disconnected)");
  }

  /// select_next() without the Lemma-9 precondition: std::nullopt when no
  /// positive-gain node remains although q > 1. A BFS-ordered phase-1 MIS
  /// never stalls, but an *arbitrary* maximal independent set can leave
  /// member components exactly 3 hops apart, which no single node can
  /// merge; callers that feed such seeds (the dynamic engine's connector
  /// rebuild) poll and patch the 3-hop gap themselves.
  std::optional<GreedyStep> poll() {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      if (c_pops_) c_pops_->add();
      if (member_[top.node]) continue;  // joined since this entry was pushed
      const std::size_t distinct = distinct_adjacent(top.node);
      if (distinct < 2) {
        if (c_retired_) c_retired_->add();
        continue;  // gain collapsed to zero: retire the node
      }
      const auto score = policy_.score(top.node, distinct);
      if (score != top.score) {
        heap_.push({score, top.node});  // stale: re-score and keep popping
        if (c_stale_) c_stale_->add();
        continue;
      }
      const auto gain = static_cast<std::uint32_t>(distinct - 1);
      const GreedyStep step{top.node, q_, gain};
      member_[top.node] = true;
      for (const NodeId v : g_.neighbors(top.node)) {
        if (member_[v] && uf_.unite(top.node, v) && c_uf_merges_) {
          c_uf_merges_->add();
        }
      }
      q_ -= gain;  // `distinct` components and the new node merge into one
      for (const NodeId v : g_.neighbors(top.node)) {
        if (!member_[v]) push_if_candidate(v);
      }
      return step;
    }
    return std::nullopt;
  }

 private:
  struct Entry {
    typename Policy::Score score;
    NodeId node;
    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.score != b.score) return a.score < b.score;  // max-score first
      return a.node > b.node;                            // then smallest id
    }
  };

  /// #distinct member components adjacent to \p w (stamp-marked roots).
  [[nodiscard]] std::size_t distinct_adjacent(NodeId w) {
    ++stamp_;
    std::size_t distinct = 0;
    std::size_t finds = 0;
    for (const NodeId v : g_.neighbors(w)) {
      if (!member_[v]) continue;
      const std::uint32_t root = uf_.find(v);
      ++finds;
      if (mark_[root] != stamp_) {
        mark_[root] = stamp_;
        ++distinct;
      }
    }
    if (c_uf_finds_) c_uf_finds_->add(finds);
    return distinct;
  }

  void push_if_candidate(NodeId w) {
    const std::size_t distinct = distinct_adjacent(w);
    if (distinct >= 2) {
      heap_.push({policy_.score(w, distinct), w});
    }
  }

  View g_;
  Policy policy_;
  graph::UnionFind uf_;
  std::vector<bool> member_;
  std::priority_queue<Entry> heap_;
  std::vector<std::uint64_t> mark_;  ///< per-root stamps for distinct counts
  std::uint64_t stamp_ = 0;
  std::size_t q_ = 0;  ///< current component count of G[members]
  /// Pre-resolved metric sinks (nullptr when observability is off).
  obs::Counter* c_uf_finds_ = nullptr;
  obs::Counter* c_uf_merges_ = nullptr;
  obs::Counter* c_pops_ = nullptr;
  obs::Counter* c_stale_ = nullptr;
  obs::Counter* c_retired_ = nullptr;
};

extern template class BasicConnectorEngine<graph::FrozenGraph,
                                           UnitGainPolicy>;
extern template class BasicConnectorEngine<graph::NestedView, UnitGainPolicy>;
extern template class BasicConnectorEngine<graph::FrozenGraph,
                                           NodeWeightedGainPolicy>;

/// The production engine: the CSR-view, unit-gain instantiation,
/// constructible straight from a finalized Graph.
class ConnectorEngine : public BasicConnectorEngine<graph::FrozenGraph> {
 public:
  ConnectorEngine(const Graph& g, std::span<const NodeId> members,
                  const obs::Obs& obs = {})
      : BasicConnectorEngine(graph::FrozenGraph(g), members, UnitGainPolicy{},
                             obs) {}
};

/// The node-weighted engine used by kmcds_weighted's phase 2. \p weight
/// must outlive the engine (the policy holds a span).
class WeightedConnectorEngine
    : public BasicConnectorEngine<graph::FrozenGraph, NodeWeightedGainPolicy> {
 public:
  WeightedConnectorEngine(const Graph& g, std::span<const NodeId> members,
                          std::span<const double> weight,
                          const obs::Obs& obs = {})
      : BasicConnectorEngine(graph::FrozenGraph(g), members,
                             NodeWeightedGainPolicy{weight}, obs) {}
};

}  // namespace mcds::core
