#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

/// \file causal.hpp
/// Causal message-chain tracing for the distributed runtime. Every
/// physical message transmission becomes a span: the runtime stamps a
/// span id into the envelope at send time and closes the span at
/// delivery, linking it to the deepest span delivered to the sender in
/// the round the send happened ("happened-before" parenting: a node
/// processes its whole inbox before it sends, so any inbox message
/// precedes any send). The result of one protocol execution is a causal
/// DAG of message chains; its longest send→deliver→send chain — the
/// critical path — is the true lower bound on the protocol's
/// convergence time, independent of how the synchronous rounds batched
/// the traffic.
///
/// Everything here is driven by logical rounds and monotone ids — no
/// wall clock, no allocation ordering — so two behaviorally identical
/// executions produce byte-identical critical-path reports and causal
/// JSONL dumps (the differential tests compare these strings).

namespace mcds::obs {

/// Id of one message transmission. 0 is "no span" (roots, tracing off).
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// The causal coordinates a sender acts under: the deepest span
/// delivered to it this round, and that span's chain depth. The default
/// (root) context describes spontaneous sends — protocol start(),
/// timer-driven traffic.
struct CausalContext {
  SpanId span = kNoSpan;
  std::uint32_t depth = 0;
};

/// Sentinel delivery round of a span that was never delivered (dropped
/// by the channel, discarded by a crash or a partition cut).
inline constexpr std::uint64_t kNeverDelivered = ~std::uint64_t{0};

/// One recorded transmission. `parent` is the deepest happened-before
/// predecessor (kNoSpan for chain roots); `depth` counts the messages
/// on the longest causal chain ending at this span (roots have depth
/// 1). Duplicated copies of one logical message get one span each, so
/// every span is delivered at most once.
struct CausalSpan {
  SpanId parent = kNoSpan;
  std::uint32_t trace = 0;  ///< index of the owning trace (protocol run)
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::int32_t type = 0;
  std::uint32_t depth = 1;
  std::uint64_t sent_round = 0;
  std::uint64_t delivered_round = kNeverDelivered;

  [[nodiscard]] bool delivered() const noexcept {
    return delivered_round != kNeverDelivered;
  }
};

/// Per-trace aggregate maintained incrementally (one trace = one
/// Runtime::run execution, labeled with its protocol name).
struct CausalTraceInfo {
  std::string label;
  std::size_t spans = 0;      ///< transmissions recorded
  std::size_t delivered = 0;  ///< transmissions that reached a live node
  std::uint32_t max_depth = 0;  ///< critical-path length in messages
  /// Deepest delivered span (smallest id among ties) — the critical
  /// path's terminal hop.
  SpanId deepest = kNoSpan;
};

/// Append-only recorder of the causal DAG. One tracer typically spans a
/// whole multi-phase construction: each phase's runtime begins its own
/// trace, and chains reset at phase boundaries (phases are barrier-
/// synchronized, so the construction-wide lower bound is the sum of the
/// per-phase critical paths).
class CausalTracer {
 public:
  /// Opens a new trace and returns its id. \p label names the protocol.
  std::uint32_t begin_trace(std::string_view label);

  /// Records one transmission sent under \p ctx during \p round.
  /// Returns the new span's id (stamped into the message envelope).
  SpanId on_send(std::uint32_t trace, const CausalContext& ctx,
                 std::uint32_t from, std::uint32_t to, std::int32_t type,
                 std::uint64_t round);

  /// Marks \p span delivered in \p round and updates its trace's
  /// critical-path aggregate. No-op for kNoSpan.
  void on_deliver(SpanId span, std::uint64_t round) noexcept;

  /// Context a receiver of \p span steps under ({kNoSpan, 0} for
  /// untraced messages).
  [[nodiscard]] CausalContext context_of(SpanId span) const noexcept {
    if (span == kNoSpan || span > spans_.size()) return {};
    return {span, spans_[span - 1].depth};
  }

  [[nodiscard]] const CausalSpan& span(SpanId id) const {
    return spans_[id - 1];
  }
  [[nodiscard]] std::size_t num_spans() const noexcept {
    return spans_.size();
  }
  [[nodiscard]] const std::vector<CausalTraceInfo>& traces() const noexcept {
    return traces_;
  }

  /// Critical-path length (messages) of one trace, 0 if nothing was
  /// delivered.
  [[nodiscard]] std::uint32_t max_depth(std::uint32_t trace) const noexcept {
    return trace < traces_.size() ? traces_[trace].max_depth : 0;
  }

 private:
  std::vector<CausalSpan> spans_;  ///< span id = index + 1
  std::vector<CausalTraceInfo> traces_;
};

/// One hop of a reconstructed critical path.
struct CriticalHop {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::int32_t type = 0;
  std::uint64_t sent_round = 0;
  std::uint64_t delivered_round = 0;
};

/// The longest causal chain of one trace.
struct CriticalPath {
  std::string label;
  std::size_t spans = 0;
  std::size_t delivered = 0;
  std::size_t length = 0;  ///< messages on the chain
  std::uint64_t first_sent_round = 0;
  std::uint64_t last_delivered_round = 0;
  std::vector<CriticalHop> hops;  ///< chain in causal order

  /// Rounds the chain occupied (inclusive); 0 for an empty chain.
  [[nodiscard]] std::uint64_t rounds_span() const noexcept {
    return hops.empty() ? 0
                        : last_delivered_round - first_sent_round + 1;
  }
};

/// Per-trace critical paths plus the construction-wide totals.
struct CriticalPathReport {
  std::vector<CriticalPath> traces;

  /// Sum of per-trace critical paths — the lower bound on the whole
  /// barrier-synchronized construction.
  [[nodiscard]] std::size_t total_length() const noexcept;

  /// Byte-stable text report (logical quantities only). \p hops also
  /// prints every hop of every chain.
  void write(std::ostream& os, bool hops = false) const;
};

/// Walks the recorded DAG and extracts each trace's longest
/// send→deliver→send chain (deepest delivered span, parent pointers
/// back to its root; ties broken toward the smallest span id, so the
/// result is unique and deterministic).
[[nodiscard]] CriticalPathReport critical_path(const CausalTracer& tracer);

/// Dumps the whole causal DAG as one JSON object per span, one per
/// line — the exportable substrate for external chain analysis.
/// Byte-stable for identical executions.
void write_causal_jsonl(const CausalTracer& tracer, std::ostream& os);

}  // namespace mcds::obs
