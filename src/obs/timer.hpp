#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/obs.hpp"

/// \file timer.hpp
/// RAII profiling hook for the hot paths (MIS election, the phase-2
/// gain loop, validate/repair). Construction opens a span on the trace
/// and/or samples a start time; destruction closes the span and records
/// the duration into a histogram. With null sinks the constructor and
/// destructor are empty branches — no clock read, no allocation.
///
/// Units follow the sink: when a trace recorder is attached the span and
/// the histogram use its clock (deterministic ticks in kLogical mode,
/// nanoseconds in kWall); with only a histogram attached the duration is
/// wall nanoseconds.

namespace mcds::obs {

class ScopedTimer {
 public:
  /// Opens span \p name on \p obs.trace and, when metrics are enabled,
  /// targets the histogram of the same name.
  ScopedTimer(const Obs& obs, std::string_view name, std::uint32_t tid = 0)
      : ScopedTimer(obs.trace, name,
                    obs.metrics ? &obs.metrics->histogram(name) : nullptr,
                    tid) {}

  ScopedTimer(TraceRecorder* trace, std::string_view name,
              Histogram* hist = nullptr, std::uint32_t tid = 0)
      : trace_(trace), hist_(hist), tid_(tid) {
    if (trace_) {
      name_ = trace_->intern(name);
      begin_ = trace_->now();
      trace_->span_begin(name_, tid_);
    } else if (hist_) {
      begin_ = wall_now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (trace_) {
      trace_->span_end(name_, tid_);
      if (hist_) hist_->record(static_cast<double>(trace_->now() - begin_));
    } else if (hist_) {
      hist_->record(static_cast<double>(wall_now() - begin_));
    }
  }

 private:
  [[nodiscard]] static std::uint64_t wall_now() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  TraceRecorder* trace_;
  Histogram* hist_;
  std::uint32_t name_ = 0;
  std::uint32_t tid_;
  std::uint64_t begin_ = 0;
};

}  // namespace mcds::obs
