#include "obs/export.hpp"

#include <cctype>
#include <ctime>
#include <ostream>
#include <string>

namespace mcds::obs {

namespace {

/// Prometheus metric-name charset is [a-zA-Z_:][a-zA-Z0-9_:]*; the
/// registry's dotted names ("runtime.in_flight") map dots (and anything
/// else) to underscores under a library prefix.
std::string prom_name(const std::string& name) {
  std::string out = "mcds_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(u) || c == '_' || c == ':' ? c : '_');
  }
  return out;
}

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

void export_prometheus(const MetricsRegistry& reg, std::ostream& os) {
  for (const auto& [name, c] : reg.counters()) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << "_total counter\n"
       << p << "_total " << c.value() << "\n";
  }
  for (const auto& [name, g] : reg.gauges()) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << g.value() << "\n";
  }
  for (const auto& [name, h] : reg.histograms()) {
    const std::string p = prom_name(name);
    const sim::Accumulator& a = h.acc();
    os << "# TYPE " << p << " summary\n"
       << p << "{quantile=\"0.5\"} " << a.p50() << "\n"
       << p << "{quantile=\"0.95\"} " << a.p95() << "\n"
       << p << "{quantile=\"0.99\"} " << a.p99() << "\n"
       << p << "_sum " << a.mean() * static_cast<double>(a.count()) << "\n"
       << p << "_count " << a.count() << "\n";
  }
}

SnapshotSink::SnapshotSink(std::ostream& os, std::size_t every,
                           bool stamp_wall_time)
    : os_(os), every_(every), stamp_wall_time_(stamp_wall_time) {}

void SnapshotSink::tick(const MetricsRegistry& reg) {
  ++events_;
  if (every_ != 0 && events_ % every_ == 0) snapshot(reg);
}

void SnapshotSink::snapshot(const MetricsRegistry& reg) {
  os_ << "{\"seq\":" << seq_++ << ",\"events\":" << events_;
  if (stamp_wall_time_) {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    os_ << ",\"time\":\"" << buf << "\"";
  }
  os_ << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : reg.counters()) {
    if (!first) os_ << ",";
    first = false;
    os_ << "\"";
    write_escaped(os_, name);
    os_ << "\":" << c.value();
  }
  os_ << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : reg.gauges()) {
    if (!first) os_ << ",";
    first = false;
    os_ << "\"";
    write_escaped(os_, name);
    os_ << "\":" << g.value();
  }
  os_ << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    if (!first) os_ << ",";
    first = false;
    const sim::Accumulator& a = h.acc();
    os_ << "\"";
    write_escaped(os_, name);
    os_ << "\":{\"count\":" << a.count() << ",\"mean\":" << a.mean()
        << ",\"p50\":" << a.p50() << ",\"p95\":" << a.p95()
        << ",\"p99\":" << a.p99() << "}";
  }
  os_ << "}}\n";
}

}  // namespace mcds::obs
