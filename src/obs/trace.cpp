#include "obs/trace.hpp"

#include <ostream>

namespace mcds::obs {

TraceRecorder::TraceRecorder(std::size_t capacity, ClockMode clock)
    : clock_(clock), epoch_(std::chrono::steady_clock::now()) {
  ring_.resize(capacity > 0 ? capacity : 1);
}

std::uint32_t TraceRecorder::intern(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

void TraceRecorder::set_track_name(std::uint32_t tid, std::string_view name) {
  track_names_.insert_or_assign(tid, std::string(name));
}

std::uint64_t TraceRecorder::now() noexcept {
  if (clock_ == ClockMode::kLogical) return ++seq_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::push(const TraceRecord& r) noexcept {
  ring_[head_] = r;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;
  }
}

void TraceRecorder::span_begin(std::uint32_t name, std::uint32_t tid) noexcept {
  push({RecordKind::kSpanBegin, name, tid, now(), 0});
}

void TraceRecorder::span_end(std::uint32_t name, std::uint32_t tid) noexcept {
  push({RecordKind::kSpanEnd, name, tid, now(), 0});
}

void TraceRecorder::instant(std::uint32_t name, std::int64_t value,
                            std::uint32_t tid) noexcept {
  push({RecordKind::kInstant, name, tid, now(), value});
}

void TraceRecorder::counter(std::uint32_t name, std::int64_t value,
                            std::uint32_t tid) noexcept {
  push({RecordKind::kCounter, name, tid, now(), value});
}

std::vector<TraceRecord> TraceRecorder::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(count_);
  const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

// Names are library-chosen identifiers, but escape the JSON specials so
// a hostile name can never corrupt the output.
void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

const char* kind_tag(RecordKind k) {
  switch (k) {
    case RecordKind::kSpanBegin:
      return "B";
    case RecordKind::kSpanEnd:
      return "E";
    case RecordKind::kInstant:
      return "i";
    case RecordKind::kCounter:
      return "C";
  }
  return "?";
}

}  // namespace

void write_jsonl(const TraceRecorder& tr, std::ostream& os) {
  for (const TraceRecord& r : tr.snapshot()) {
    os << "{\"ph\":\"" << kind_tag(r.kind) << "\",\"name\":\"";
    write_escaped(os, tr.name(r.name));
    os << "\",\"ts\":" << r.ts << ",\"tid\":" << r.tid;
    if (r.kind == RecordKind::kCounter || r.kind == RecordKind::kInstant) {
      os << ",\"value\":" << r.value;
    }
    os << "}\n";
  }
}

void write_chrome_trace(const TraceRecorder& tr, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Metadata first: Perfetto applies process/thread labels to every
  // later event regardless of order, but leading with them keeps the
  // file self-describing when read as plain text.
  os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
        "\"args\":{\"name\":\"mcds\"}}";
  first = false;
  for (const auto& [tid, label] : tr.track_names()) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << tid << ",\"args\":{\"name\":\"";
    write_escaped(os, label);
    os << "\"}}";
  }
  for (const TraceRecord& r : tr.snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    write_escaped(os, tr.name(r.name));
    os << "\",\"ph\":\"" << kind_tag(r.kind) << "\",\"pid\":0,\"tid\":"
       << r.tid << ",\"ts\":" << r.ts;
    if (r.kind == RecordKind::kInstant) {
      os << ",\"s\":\"t\",\"args\":{\"value\":" << r.value << "}";
    } else if (r.kind == RecordKind::kCounter) {
      os << ",\"args\":{\"value\":" << r.value << "}";
    }
    os << "}";
  }
  // displayTimeUnit keeps Perfetto from collapsing logical-tick spans.
  os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\""
     << (tr.clock() == ClockMode::kLogical ? "logical" : "wall_ns")
     << "\",\"dropped\":" << tr.dropped() << "}}\n";
}

std::string format_trace_tail(const TraceRecorder& tr, std::size_t n) {
  const std::vector<TraceRecord> records = tr.snapshot();
  if (records.empty() || n == 0) return {};
  const std::size_t start = records.size() > n ? records.size() - n : 0;
  std::string out = "last trace events:";
  for (std::size_t i = start; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    out += "\n  ts=" + std::to_string(r.ts) + " " + kind_tag(r.kind) + " " +
           tr.name(r.name);
    if (r.kind == RecordKind::kCounter || r.kind == RecordKind::kInstant) {
      out += "=" + std::to_string(r.value);
    }
    if (r.tid != 0) out += " tid=" + std::to_string(r.tid);
  }
  return out;
}

}  // namespace mcds::obs
