#include "obs/profile.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

namespace mcds::obs {

namespace {

/// One open span on a track's replay stack.
struct Frame {
  std::uint32_t name = 0;
  std::uint64_t begin = 0;
  std::uint64_t child = 0;  ///< inclusive time of closed children
};

struct TrackState {
  std::vector<Frame> stack;
  ProfileNode* base = nullptr;  ///< where this track's stacks root
};

void accumulate(ProfileNode* base, const std::vector<Frame>& stack,
                const TraceRecorder& tr, const Frame& f,
                std::uint64_t end_ts) {
  const std::uint64_t inclusive = end_ts >= f.begin ? end_ts - f.begin : 0;
  const std::uint64_t exclusive =
      inclusive >= f.child ? inclusive - f.child : 0;
  ProfileNode* node = base;
  for (const Frame& ancestor : stack) {
    node = &node->children[tr.name(ancestor.name)];
  }
  node = &node->children[tr.name(f.name)];
  node->inclusive += inclusive;
  node->exclusive += exclusive;
  node->count += 1;
}

void fold_rec(std::ostream& os, const ProfileNode& node, std::string& path) {
  if (node.count > 0 || node.exclusive > 0) {
    os << path << " " << node.exclusive << "\n";
  }
  for (const auto& [name, child] : node.children) {
    const std::size_t len = path.size();
    if (!path.empty()) path.push_back(';');
    path.append(name);
    fold_rec(os, child, path);
    path.resize(len);
  }
}

void tree_rec(std::ostream& os, const ProfileNode& node,
              const std::string& name, std::uint64_t total, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << name << "  incl=" << node.inclusive << " excl=" << node.exclusive
     << " count=" << node.count;
  if (total > 0) {
    // Integer tenths of a percent keep the report byte-deterministic.
    const std::uint64_t pct10 = node.inclusive * 1000 / total;
    os << " (" << pct10 / 10 << "." << pct10 % 10 << "%)";
  }
  os << "\n";
  for (const auto& [child_name, child] : node.children) {
    tree_rec(os, child, child_name, total, depth + 1);
  }
}

}  // namespace

ProfileTree ProfileTree::build(const TraceRecorder& tr) {
  ProfileTree out;
  std::map<std::uint32_t, TrackState> tracks;
  std::uint64_t last_ts = 0;
  for (const TraceRecord& r : tr.snapshot()) {
    last_ts = std::max(last_ts, r.ts);
    if (r.kind != RecordKind::kSpanBegin && r.kind != RecordKind::kSpanEnd) {
      continue;
    }
    TrackState& track = tracks[r.tid];
    if (track.base == nullptr) {
      if (r.tid == 0) {
        track.base = &out.root_;
      } else {
        // Non-default tracks group under their name so concurrent
        // layers' stacks don't interleave in the folded output.
        const auto it = tr.track_names().find(r.tid);
        const std::string label = it != tr.track_names().end()
                                      ? it->second
                                      : "tid" + std::to_string(r.tid);
        track.base = &out.root_.children[label];
      }
    }
    if (r.kind == RecordKind::kSpanBegin) {
      track.stack.push_back({r.name, r.ts, 0});
      continue;
    }
    // kSpanEnd: a begin lost to ring overwrite leaves the end with an
    // empty or mismatched stack — count it, never corrupt the stack.
    if (track.stack.empty() || track.stack.back().name != r.name) {
      ++out.unmatched_;
      continue;
    }
    const Frame f = track.stack.back();
    track.stack.pop_back();
    accumulate(track.base, track.stack, tr, f, r.ts);
    if (!track.stack.empty()) {
      const std::uint64_t inclusive = r.ts >= f.begin ? r.ts - f.begin : 0;
      track.stack.back().child += inclusive;
    }
  }
  // Close spans still open at the snapshot edge at the last timestamp
  // seen, innermost first, so partial runs still profile.
  for (auto& [tid, track] : tracks) {
    (void)tid;
    while (!track.stack.empty()) {
      const Frame f = track.stack.back();
      track.stack.pop_back();
      accumulate(track.base, track.stack, tr, f, last_ts);
      if (!track.stack.empty()) {
        const std::uint64_t inclusive =
            last_ts >= f.begin ? last_ts - f.begin : 0;
        track.stack.back().child += inclusive;
      }
      ++out.truncated_;
    }
  }
  return out;
}

void ProfileTree::write_folded(std::ostream& os) const {
  std::string path;
  for (const auto& [name, child] : root_.children) {
    path = name;
    fold_rec(os, child, path);
  }
}

void ProfileTree::write_tree(std::ostream& os) const {
  std::uint64_t total = 0;
  for (const auto& [name, child] : root_.children) {
    (void)name;
    total += child.inclusive;
  }
  os << "phase profile (inclusive/exclusive, " << total << " total)";
  if (truncated_ > 0) os << " truncated=" << truncated_;
  if (unmatched_ > 0) os << " unmatched=" << unmatched_;
  os << "\n";
  for (const auto& [name, child] : root_.children) {
    tree_rec(os, child, name, total, 1);
  }
}

}  // namespace mcds::obs
