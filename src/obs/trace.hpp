#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

/// \file trace.hpp
/// Structured execution tracing: a bounded ring buffer of spans, instant
/// events and counter samples, with sinks for JSONL (one record per
/// line, byte-stable for determinism tests) and the Chrome trace-event
/// format (open the file in chrome://tracing or https://ui.perfetto.dev).
///
/// The recorder never touches the wall clock unless asked: in the
/// default kLogical mode every record is stamped with a monotone event
/// sequence number, so two behaviorally identical executions serialize
/// to byte-identical traces. kWall stamps nanoseconds since recorder
/// construction for real profiling.
///
/// Recording is allocation-free after construction (the ring and the
/// name table are the only owners of memory; interning a name the first
/// time allocates, which instrumented components do at setup time).

namespace mcds::obs {

/// Timestamp source of a TraceRecorder.
enum class ClockMode : std::uint8_t {
  kLogical,  ///< ts = monotone per-recorder event sequence (deterministic)
  kWall,     ///< ts = nanoseconds since recorder construction
};

/// What one ring slot describes.
enum class RecordKind : std::uint8_t {
  kSpanBegin,  ///< start of a nested span (Chrome "B")
  kSpanEnd,    ///< end of the innermost open span on the track ("E")
  kInstant,    ///< point event ("i"); value is a free argument
  kCounter,    ///< counter sample ("C"); value is the counter reading
};

/// One recorded event. `name` indexes the recorder's interned name
/// table; `tid` selects the track (protocols use 0; concurrent layers
/// can fan out).
struct TraceRecord {
  RecordKind kind = RecordKind::kInstant;
  std::uint32_t name = 0;
  std::uint32_t tid = 0;
  std::uint64_t ts = 0;
  std::int64_t value = 0;
};

/// Bounded ring buffer of TraceRecords. When full, the oldest records
/// are overwritten (dropped() reports how many) — tracing never grows
/// without bound and never aborts a run.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity,
                         ClockMode clock = ClockMode::kLogical);

  static constexpr std::size_t kDefaultCapacity = 1u << 18;

  /// Returns the stable id of \p name, interning it on first use. Hot
  /// call sites intern once up front and reuse the id.
  std::uint32_t intern(std::string_view name);

  /// Labels a track: the Chrome sink emits the matching thread_name
  /// metadata event (Perfetto shows the label instead of a bare tid)
  /// and the phase profiler prefixes the track's folded stacks with it.
  void set_track_name(std::uint32_t tid, std::string_view name);
  [[nodiscard]] const std::map<std::uint32_t, std::string>& track_names()
      const noexcept {
    return track_names_;
  }

  /// The current timestamp in this recorder's clock units.
  [[nodiscard]] std::uint64_t now() noexcept;

  void span_begin(std::uint32_t name, std::uint32_t tid = 0) noexcept;
  void span_end(std::uint32_t name, std::uint32_t tid = 0) noexcept;
  void instant(std::uint32_t name, std::int64_t value = 0,
               std::uint32_t tid = 0) noexcept;
  void counter(std::uint32_t name, std::int64_t value,
               std::uint32_t tid = 0) noexcept;

  [[nodiscard]] ClockMode clock() const noexcept { return clock_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Records overwritten because the ring was full.
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const std::string& name(std::uint32_t id) const {
    return names_[id];
  }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

 private:
  void push(const TraceRecord& r) noexcept;

  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;   ///< next write slot
  std::size_t count_ = 0;  ///< records retained (<= capacity)
  std::size_t dropped_ = 0;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> ids_;
  std::map<std::uint32_t, std::string> track_names_;
  ClockMode clock_;
  std::uint64_t seq_ = 0;  ///< kLogical tick source
  std::chrono::steady_clock::time_point epoch_;
};

/// Writes one JSON object per record, one per line. With a kLogical
/// recorder the output is byte-identical across behaviorally identical
/// executions — the determinism guard compares these strings.
void write_jsonl(const TraceRecorder& tr, std::ostream& os);

/// Writes the Chrome trace-event JSON object ({"traceEvents": [...]}).
/// Loads directly in chrome://tracing and Perfetto; counter records
/// become counter tracks, spans become nested slices. Leads with
/// process_name/thread_name metadata ("M") events so Perfetto labels
/// the process and every named track (set_track_name).
void write_chrome_trace(const TraceRecorder& tr, std::ostream& os);

/// Formats the last \p n retained records as an indented human-readable
/// tail — the post-mortem appended to RoundLimitError messages so a
/// blown round budget reports what the runtime was doing when it died.
/// Byte-stable under kLogical.
[[nodiscard]] std::string format_trace_tail(const TraceRecorder& tr,
                                            std::size_t n);

}  // namespace mcds::obs
