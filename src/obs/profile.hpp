#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/trace.hpp"

/// \file profile.hpp
/// Aggregates the ScopedTimer span stream of a TraceRecorder into an
/// inclusive/exclusive phase tree — the hot-path breakdown of
/// greedy_cds/waf_cds/the connector engine without an external
/// profiler. Two writers: a human-readable indented tree, and
/// flamegraph-compatible folded stacks ("a;b;c <exclusive>") that feed
/// flamegraph.pl, speedscope or Perfetto's folded importer directly.
///
/// Durations are in the recorder's clock units: logical ticks under
/// kLogical (a *count* profile: how many trace events each phase
/// produced — still proportional to work and byte-deterministic) and
/// nanoseconds under kWall (a real time profile).

namespace mcds::obs {

/// One phase (span name) at one position in the nesting. `inclusive`
/// counts the full span durations, `exclusive` subtracts enclosed child
/// spans; `count` is the number of completed visits.
struct ProfileNode {
  std::uint64_t inclusive = 0;
  std::uint64_t exclusive = 0;
  std::uint64_t count = 0;
  /// Children keyed by span name — map storage keeps every writer's
  /// output in sorted, deterministic order.
  std::map<std::string, ProfileNode> children;
};

/// The aggregated phase tree of one recorder's retained records.
class ProfileTree {
 public:
  /// Replays \p tr's snapshot, one span stack per track (tid). Spans
  /// whose begin was overwritten by the ring are dropped (their ends
  /// are ignored); spans still open at the end of the snapshot are
  /// closed at the last timestamp seen and counted in truncated().
  [[nodiscard]] static ProfileTree build(const TraceRecorder& tr);

  /// Folded-stack lines, deepest-path-per-line, exclusive values:
  /// "root;child;grandchild 1234". Tracks other than 0 prefix their
  /// stacks with the track name (set_track_name) or "tid<k>".
  void write_folded(std::ostream& os) const;

  /// Indented tree with inclusive/exclusive durations, visit counts and
  /// the inclusive share of the total.
  void write_tree(std::ostream& os) const;

  [[nodiscard]] const ProfileNode& root() const noexcept { return root_; }
  /// Spans force-closed because the snapshot ended inside them.
  [[nodiscard]] std::size_t truncated() const noexcept { return truncated_; }
  /// Span-end records whose begin fell off the ring.
  [[nodiscard]] std::size_t unmatched() const noexcept { return unmatched_; }

 private:
  ProfileNode root_;
  std::size_t truncated_ = 0;
  std::size_t unmatched_ = 0;
};

}  // namespace mcds::obs
