#include "obs/causal.hpp"

#include <algorithm>
#include <ostream>

namespace mcds::obs {

std::uint32_t CausalTracer::begin_trace(std::string_view label) {
  const auto id = static_cast<std::uint32_t>(traces_.size());
  CausalTraceInfo info;
  info.label = std::string(label);
  traces_.push_back(std::move(info));
  return id;
}

SpanId CausalTracer::on_send(std::uint32_t trace, const CausalContext& ctx,
                             std::uint32_t from, std::uint32_t to,
                             std::int32_t type, std::uint64_t round) {
  CausalSpan s;
  s.parent = ctx.span;
  s.trace = trace;
  s.from = from;
  s.to = to;
  s.type = type;
  s.depth = ctx.depth + 1;
  s.sent_round = round;
  spans_.push_back(s);
  if (trace < traces_.size()) ++traces_[trace].spans;
  return static_cast<SpanId>(spans_.size());
}

void CausalTracer::on_deliver(SpanId span, std::uint64_t round) noexcept {
  if (span == kNoSpan || span > spans_.size()) return;
  CausalSpan& s = spans_[span - 1];
  if (s.delivered()) return;  // a duplicate copy has its own span
  s.delivered_round = round;
  if (s.trace >= traces_.size()) return;
  CausalTraceInfo& t = traces_[s.trace];
  ++t.delivered;
  // Strict > keeps the smallest span id among equal depths: spans are
  // recorded in send order, so the winner is the earliest deepest chain.
  if (s.depth > t.max_depth) {
    t.max_depth = s.depth;
    t.deepest = span;
  }
}

std::size_t CriticalPathReport::total_length() const noexcept {
  std::size_t total = 0;
  for (const CriticalPath& t : traces) total += t.length;
  return total;
}

void CriticalPathReport::write(std::ostream& os, bool hops) const {
  os << "critical path (longest send->deliver->send chain per trace)\n";
  for (const CriticalPath& t : traces) {
    os << "  [" << t.label << "] spans=" << t.spans
       << " delivered=" << t.delivered << " critical_path=" << t.length;
    if (t.length > 0) {
      os << " rounds=" << t.rounds_span() << " (sent@" << t.first_sent_round
         << " -> delivered@" << t.last_delivered_round << ")";
    }
    os << "\n";
    if (hops) {
      for (const CriticalHop& h : t.hops) {
        os << "    " << h.from << " -> " << h.to << " type=" << h.type
           << " sent@" << h.sent_round << " delivered@" << h.delivered_round
           << "\n";
      }
    }
  }
  os << "  total critical path: " << total_length() << " message(s) over "
     << traces.size() << " trace(s)\n";
}

CriticalPathReport critical_path(const CausalTracer& tracer) {
  CriticalPathReport report;
  report.traces.reserve(tracer.traces().size());
  for (const CausalTraceInfo& info : tracer.traces()) {
    CriticalPath path;
    path.label = info.label;
    path.spans = info.spans;
    path.delivered = info.delivered;
    path.length = info.max_depth;
    if (info.deepest != kNoSpan) {
      // Parent ids always precede their children, so this terminates.
      for (SpanId id = info.deepest; id != kNoSpan;
           id = tracer.span(id).parent) {
        const CausalSpan& s = tracer.span(id);
        path.hops.push_back({s.from, s.to, s.type, s.sent_round,
                             s.delivered_round});
      }
      std::reverse(path.hops.begin(), path.hops.end());
      path.first_sent_round = path.hops.front().sent_round;
      path.last_delivered_round = path.hops.back().delivered_round;
    }
    report.traces.push_back(std::move(path));
  }
  return report;
}

void write_causal_jsonl(const CausalTracer& tracer, std::ostream& os) {
  for (SpanId id = 1; id <= tracer.num_spans(); ++id) {
    const CausalSpan& s = tracer.span(id);
    os << "{\"span\":" << id << ",\"parent\":" << s.parent
       << ",\"trace\":" << s.trace << ",\"from\":" << s.from
       << ",\"to\":" << s.to << ",\"type\":" << s.type
       << ",\"depth\":" << s.depth << ",\"sent\":" << s.sent_round;
    if (s.delivered()) {
      os << ",\"delivered\":" << s.delivered_round;
    }
    os << "}\n";
  }
}

}  // namespace mcds::obs
