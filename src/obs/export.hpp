#pragma once

#include <cstddef>
#include <iosfwd>

#include "obs/obs.hpp"

/// \file export.hpp
/// Metric export beyond the one-shot JSON dump: Prometheus text
/// exposition (scrape-ready, the substrate a serving front end mounts
/// under /metrics) and a periodic SnapshotSink that appends timestamped
/// JSONL registry snapshots during long runs (dynamic churn streams,
/// survivability massacres), so a metric's trajectory over a run is
/// reconstructable, not just its final value.

namespace mcds::obs {

/// Writes \p reg in the Prometheus text exposition format (version
/// 0.0.4). Metric names are prefixed with "mcds_" and sanitized
/// ([^a-zA-Z0-9_:] -> '_'); counters export as counter with a "_total"
/// suffix, gauges as gauge, histograms as summary (p50/p95/p99 quantile
/// series plus _sum and _count). Families appear in sorted name order,
/// so the output is deterministic for a given registry state.
void export_prometheus(const MetricsRegistry& reg, std::ostream& os);

/// Appends one JSON object per snapshot, one per line, to a caller-owned
/// stream: {"seq":k,"events":n,"time":"<ISO-8601 UTC>","counters":{...},
/// "gauges":{...},"histograms":{...}}. tick() counts events and
/// snapshots every `every` of them; snapshot() appends unconditionally
/// (a final flush, a phase boundary). The wall-clock stamp can be
/// disabled for byte-deterministic output (the differential tests do).
class SnapshotSink {
 public:
  /// \p every == 0 means "manual only": tick() counts but never
  /// snapshots. \p os must outlive the sink.
  explicit SnapshotSink(std::ostream& os, std::size_t every = 1,
                        bool stamp_wall_time = true);

  /// Counts one event; appends a snapshot of \p reg every `every`
  /// events.
  void tick(const MetricsRegistry& reg);

  /// Appends a snapshot of \p reg now.
  void snapshot(const MetricsRegistry& reg);

  [[nodiscard]] std::size_t events() const noexcept { return events_; }
  [[nodiscard]] std::size_t snapshots() const noexcept { return seq_; }

 private:
  std::ostream& os_;
  std::size_t every_;
  bool stamp_wall_time_;
  std::size_t events_ = 0;
  std::size_t seq_ = 0;
};

/// Ticks the handle's snapshot sink with its registry — the one-liner
/// instrumented loops call per event. No-op unless both are attached.
inline void tick_snapshot(const Obs& obs) {
  if (obs.snapshots != nullptr && obs.metrics != nullptr) {
    obs.snapshots->tick(*obs.metrics);
  }
}

}  // namespace mcds::obs
