#include "obs/metrics.hpp"

#include <ostream>

namespace mcds::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  // try_emplace: the atomic counter is not copyable.
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"";
    write_escaped(os, name);
    os << "\": " << c.value();
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"";
    write_escaped(os, name);
    os << "\": " << g.value();
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    const sim::Accumulator& a = h.acc();
    os << "\n    \"";
    write_escaped(os, name);
    os << "\": {\"count\": " << a.count() << ", \"mean\": " << a.mean()
       << ", \"stdev\": " << a.stdev() << ", \"min\": " << a.min()
       << ", \"max\": " << a.max() << ", \"p50\": " << a.p50()
       << ", \"p95\": " << a.p95() << ", \"p99\": " << a.p99() << "}";
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace mcds::obs
