#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "sim/stats.hpp"

/// \file metrics.hpp
/// A registry of named counters, gauges and histograms. Components
/// resolve the metrics they update once, at construction time, and keep
/// raw pointers — the registry's node-based storage guarantees stable
/// addresses for its lifetime, so the hot-path cost of an update is one
/// null check plus one add. Export is a single sorted JSON object
/// (deterministic key order), which the CLI's --metrics flag and the
/// bench harnesses write to disk.

namespace mcds::obs {

/// Monotone event counter. Relaxed-atomic so components updating a
/// shared counter from concurrent workers (the parallel distributed
/// runtime's protocols) stay race-free; addition is commutative, so the
/// final value is thread-count-independent. Single-threaded updaters
/// pay one uncontended atomic add.
class Counter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Streaming distribution: count/min/max/mean/stdev plus P² tail
/// quantiles (p50/p95/p99), all O(1) space per histogram.
class Histogram {
 public:
  void record(double x) noexcept { acc_.add(x); }
  [[nodiscard]] const sim::Accumulator& acc() const noexcept { return acc_; }

 private:
  sim::Accumulator acc_;
};

/// Create-or-get registry. Returned references stay valid for the
/// registry's lifetime (node-based map storage).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// One JSON object with "counters", "gauges" and "histograms" keys,
  /// each sorted by metric name.
  void write_json(std::ostream& os) const;

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges()
      const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const noexcept {
    return histograms_;
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace mcds::obs
