#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

/// \file obs.hpp
/// The handle instrumented components carry: four optional sinks. The
/// default-constructed handle is the null sink — every instrumentation
/// site is an ordinary `if (ptr)` branch (no macros), so a disabled
/// build path costs one predictable-not-taken branch and performs no
/// allocation whatsoever.

namespace mcds::obs {

class CausalTracer;  // causal.hpp
class SnapshotSink;  // export.hpp

/// Observability sinks for one execution. Copyable, four pointers wide;
/// all sinks (when set) must outlive every component holding the
/// handle.
struct Obs {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  /// Causal message-chain recorder (dist::Runtime stamps span ids into
  /// envelopes when attached).
  CausalTracer* causal = nullptr;
  /// Periodic JSONL metric-snapshot sink (long-run loops tick it per
  /// event via tick_snapshot()).
  SnapshotSink* snapshots = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return metrics != nullptr || trace != nullptr;
  }

  /// Resolves a counter, or nullptr when metrics are disabled — the
  /// setup-time half of the null-sink pattern.
  [[nodiscard]] Counter* counter(std::string_view name) const {
    return metrics ? &metrics->counter(name) : nullptr;
  }
  [[nodiscard]] Gauge* gauge(std::string_view name) const {
    return metrics ? &metrics->gauge(name) : nullptr;
  }
  [[nodiscard]] Histogram* histogram(std::string_view name) const {
    return metrics ? &metrics->histogram(name) : nullptr;
  }
};

}  // namespace mcds::obs
