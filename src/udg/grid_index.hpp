#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/delta_graph.hpp"
#include "graph/graph.hpp"

/// \file grid_index.hpp
/// The persistent half of build_udg. The batch builder hashes every
/// point into radius-sized cells, sweeps the 3×3 neighborhood, and
/// throws the whole grid away; under churn that is O(n) of rebuilt state
/// per event. GridIndex owns the same cell → point mapping across
/// events: insert, move, erase and revive each touch only the O(1)
/// cells around the affected point and emit the *exact* set of unit-disk
/// edges that appeared or vanished, which is what the incremental CDS
/// engine consumes. Node ids are stable and never reused; a node erased
/// from the index keeps its id and position slot and can be revived
/// (fail-stop churn: a crashed radio still rides its vehicle).

namespace mcds::udg {

using graph::NodeId;

class GridIndex {
 public:
  /// An empty index with the given communication radius (> 0).
  explicit GridIndex(double radius);

  /// Bulk-loads \p points (all alive), ids 0..n-1 in order.
  GridIndex(std::span<const geom::Vec2> points, double radius);

  /// Adds a new alive node at \p p and returns its id (== size() before
  /// the call). The overloads with \p delta append the exact unit-disk
  /// edges created/destroyed by the event, canonical (u < v) and sorted.
  NodeId insert(geom::Vec2 p);
  NodeId insert(geom::Vec2 p, graph::EdgeDelta& delta);

  /// Repositions the alive node \p v.
  void move(NodeId v, geom::Vec2 p);
  void move(NodeId v, geom::Vec2 p, graph::EdgeDelta& delta);

  /// Marks the alive node \p v dead: it leaves the grid and every
  /// incident edge is removed. Its id and position remain.
  void erase(NodeId v);
  void erase(NodeId v, graph::EdgeDelta& delta);

  /// Returns the dead node \p v to the grid at position \p p.
  void revive(NodeId v, geom::Vec2 p);
  void revive(NodeId v, geom::Vec2 p, graph::EdgeDelta& delta);

  /// Total ids ever issued (alive + dead).
  [[nodiscard]] std::size_t size() const noexcept { return pos_.size(); }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    return alive_count_;
  }
  [[nodiscard]] bool alive(NodeId v) const { return alive_.at(v) != 0; }
  [[nodiscard]] geom::Vec2 position(NodeId v) const { return pos_.at(v); }
  [[nodiscard]] double radius() const noexcept { return radius_; }

  /// Per-node liveness flags, indexed by id.
  [[nodiscard]] const std::vector<std::uint8_t>& alive_flags() const noexcept {
    return alive_;
  }

  /// Ids of alive nodes, ascending.
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;

  /// Alive nodes within the radius of \p p (excluding \p exclude; pass
  /// graph::kNoNode-like sentinel size() to exclude nothing), sorted
  /// ascending into \p out.
  void alive_in_range(geom::Vec2 p, NodeId exclude,
                      std::vector<NodeId>& out) const;

  /// Current unit-disk neighbors of the alive node \p v, sorted.
  void alive_neighbors(NodeId v, std::vector<NodeId>& out) const;

  /// The unit-disk graph over the alive nodes, on the full id space
  /// (dead nodes are isolated). Identical CSR to what build_udg produces
  /// for the same alive positions.
  [[nodiscard]] graph::Graph build_graph() const;

  /// Number of occupied grid cells (diagnostics).
  [[nodiscard]] std::size_t occupied_cells() const noexcept {
    return cells_.size();
  }

 private:
  [[nodiscard]] std::uint64_t cell_of(geom::Vec2 p) const noexcept;
  void cell_insert(std::uint64_t key, NodeId v);
  void cell_erase(std::uint64_t key, NodeId v);
  void check_alive(NodeId v, bool want_alive, const char* what) const;

  double radius_ = 1.0;
  double r2_ = 1.0;
  /// Cell → alive node ids, each vector kept id-sorted so neighborhood
  /// scans and delta emission are deterministic.
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cells_;
  std::vector<geom::Vec2> pos_;
  std::vector<std::uint8_t> alive_;
  std::size_t alive_count_ = 0;
};

}  // namespace mcds::udg
