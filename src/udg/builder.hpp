#pragma once

#include <span>

#include "geom/vec2.hpp"
#include "graph/graph.hpp"

/// \file builder.hpp
/// Unit-disk graph construction: nodes are points; {u, v} is an edge iff
/// |uv| <= radius. A uniform grid makes construction O(n) expected for
/// bounded densities (vs the naive O(n^2)).

namespace mcds::par {
class ThreadPool;
}  // namespace mcds::par

namespace mcds::udg {

/// Builds the unit-disk graph over \p points with communication radius
/// \p radius (default 1, the paper's normalization). Points exactly at
/// distance `radius` are connected (closed-disk model, matching the
/// paper's "distance at most one").
[[nodiscard]] graph::Graph build_udg(std::span<const geom::Vec2> points,
                                     double radius = 1.0);

/// build_udg with the grid neighborhood sweep fanned over \p pool. The
/// occupied-cell index is built serially (hash insertion is inherently
/// ordered); the O(n · density) distance tests — the dominant cost — run
/// as per-chunk tasks whose edge lists are merged in chunk order, and
/// Graph::finalize() canonicalizes adjacency, so the result is
/// bit-identical to the serial builder at every thread count.
[[nodiscard]] graph::Graph build_udg(std::span<const geom::Vec2> points,
                                     double radius, par::ThreadPool& pool);

/// Reference quadratic implementation, used to cross-check build_udg in
/// tests.
[[nodiscard]] graph::Graph build_udg_naive(std::span<const geom::Vec2> points,
                                           double radius = 1.0);

}  // namespace mcds::udg
