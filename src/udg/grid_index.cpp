#include "udg/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace mcds::udg {

using geom::Vec2;
using graph::EdgeDelta;
using graph::Graph;

namespace {

/// Same packing as build_udg: two 32-bit cell coordinates in one key.
[[nodiscard]] std::uint64_t cell_key(long cx, long cy) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

[[nodiscard]] std::pair<NodeId, NodeId> canonical(NodeId a, NodeId b) noexcept {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

GridIndex::GridIndex(double radius) : radius_(radius), r2_(radius * radius) {
  if (!(radius > 0.0)) {
    throw std::invalid_argument("GridIndex: radius must be positive");
  }
}

GridIndex::GridIndex(std::span<const Vec2> points, double radius)
    : GridIndex(radius) {
  pos_.reserve(points.size());
  alive_.reserve(points.size());
  cells_.reserve(points.size());
  for (const Vec2 p : points) {
    const auto id = static_cast<NodeId>(pos_.size());
    pos_.push_back(p);
    alive_.push_back(1);
    cell_insert(cell_of(p), id);
  }
  alive_count_ = points.size();
}

std::uint64_t GridIndex::cell_of(Vec2 p) const noexcept {
  return cell_key(static_cast<long>(std::floor(p.x / radius_)),
                  static_cast<long>(std::floor(p.y / radius_)));
}

void GridIndex::cell_insert(std::uint64_t key, NodeId v) {
  auto& cell = cells_[key];
  cell.insert(std::lower_bound(cell.begin(), cell.end(), v), v);
}

void GridIndex::cell_erase(std::uint64_t key, NodeId v) {
  const auto it = cells_.find(key);
  if (it == cells_.end()) {
    throw std::logic_error("GridIndex: cell missing on erase");
  }
  auto& cell = it->second;
  const auto pos = std::lower_bound(cell.begin(), cell.end(), v);
  if (pos == cell.end() || *pos != v) {
    throw std::logic_error("GridIndex: node missing from its cell");
  }
  cell.erase(pos);
  if (cell.empty()) cells_.erase(it);
}

void GridIndex::check_alive(NodeId v, bool want_alive, const char* what) const {
  if (v >= pos_.size()) {
    throw std::invalid_argument(std::string("GridIndex::") + what + ": node " +
                                std::to_string(v) + " out of range");
  }
  if ((alive_[v] != 0) != want_alive) {
    throw std::invalid_argument(std::string("GridIndex::") + what + ": node " +
                                std::to_string(v) +
                                (want_alive ? " is dead" : " is alive"));
  }
}

void GridIndex::alive_in_range(Vec2 p, NodeId exclude,
                               std::vector<NodeId>& out) const {
  out.clear();
  const long cx = static_cast<long>(std::floor(p.x / radius_));
  const long cy = static_cast<long>(std::floor(p.y / radius_));
  for (long dy = -1; dy <= 1; ++dy) {
    for (long dx = -1; dx <= 1; ++dx) {
      const auto it = cells_.find(cell_key(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (const NodeId j : it->second) {
        if (j == exclude) continue;
        if (geom::dist2(p, pos_[j]) <= r2_) out.push_back(j);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

void GridIndex::alive_neighbors(NodeId v, std::vector<NodeId>& out) const {
  check_alive(v, true, "alive_neighbors");
  alive_in_range(pos_[v], v, out);
}

std::vector<NodeId> GridIndex::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  for (NodeId v = 0; v < pos_.size(); ++v) {
    if (alive_[v]) out.push_back(v);
  }
  return out;
}

NodeId GridIndex::insert(Vec2 p) {
  EdgeDelta ignored;
  return insert(p, ignored);
}

NodeId GridIndex::insert(Vec2 p, EdgeDelta& delta) {
  const auto id = static_cast<NodeId>(pos_.size());
  std::vector<NodeId> nbrs;
  alive_in_range(p, id, nbrs);
  pos_.push_back(p);
  alive_.push_back(1);
  ++alive_count_;
  cell_insert(cell_of(p), id);
  // The new id is the largest, so (x, id) pairs are already canonical
  // and lexicographically sorted by x.
  for (const NodeId x : nbrs) delta.added.emplace_back(x, id);
  return id;
}

void GridIndex::erase(NodeId v) {
  EdgeDelta ignored;
  erase(v, ignored);
}

void GridIndex::erase(NodeId v, EdgeDelta& delta) {
  check_alive(v, true, "erase");
  std::vector<NodeId> nbrs;
  alive_in_range(pos_[v], v, nbrs);
  cell_erase(cell_of(pos_[v]), v);
  alive_[v] = 0;
  --alive_count_;
  const std::size_t first = delta.removed.size();
  for (const NodeId x : nbrs) delta.removed.push_back(canonical(v, x));
  std::sort(delta.removed.begin() + static_cast<long>(first),
            delta.removed.end());
}

void GridIndex::revive(NodeId v, Vec2 p) {
  EdgeDelta ignored;
  revive(v, p, ignored);
}

void GridIndex::revive(NodeId v, Vec2 p, EdgeDelta& delta) {
  check_alive(v, false, "revive");
  pos_[v] = p;
  alive_[v] = 1;
  ++alive_count_;
  cell_insert(cell_of(p), v);
  std::vector<NodeId> nbrs;
  alive_in_range(p, v, nbrs);
  const std::size_t first = delta.added.size();
  for (const NodeId x : nbrs) delta.added.push_back(canonical(v, x));
  std::sort(delta.added.begin() + static_cast<long>(first), delta.added.end());
}

void GridIndex::move(NodeId v, Vec2 p) {
  EdgeDelta ignored;
  move(v, p, ignored);
}

void GridIndex::move(NodeId v, Vec2 p, EdgeDelta& delta) {
  check_alive(v, true, "move");
  std::vector<NodeId> before;
  alive_in_range(pos_[v], v, before);
  const std::uint64_t old_key = cell_of(pos_[v]);
  const std::uint64_t new_key = cell_of(p);
  if (old_key != new_key) {
    cell_erase(old_key, v);
    cell_insert(new_key, v);
  }
  pos_[v] = p;
  std::vector<NodeId> after;
  alive_in_range(p, v, after);

  std::vector<NodeId> gained;
  std::vector<NodeId> lost;
  std::set_difference(after.begin(), after.end(), before.begin(), before.end(),
                      std::back_inserter(gained));
  std::set_difference(before.begin(), before.end(), after.begin(), after.end(),
                      std::back_inserter(lost));
  const std::size_t first_add = delta.added.size();
  const std::size_t first_rem = delta.removed.size();
  for (const NodeId x : gained) delta.added.push_back(canonical(v, x));
  for (const NodeId x : lost) delta.removed.push_back(canonical(v, x));
  std::sort(delta.added.begin() + static_cast<long>(first_add),
            delta.added.end());
  std::sort(delta.removed.begin() + static_cast<long>(first_rem),
            delta.removed.end());
}

Graph GridIndex::build_graph() const {
  Graph g(pos_.size());
  const double r2 = r2_;
  for (NodeId i = 0; i < pos_.size(); ++i) {
    if (!alive_[i]) continue;
    const Vec2 p = pos_[i];
    const long cx = static_cast<long>(std::floor(p.x / radius_));
    const long cy = static_cast<long>(std::floor(p.y / radius_));
    for (long dy = -1; dy <= 1; ++dy) {
      for (long dx = -1; dx <= 1; ++dx) {
        const auto it = cells_.find(cell_key(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        for (const NodeId j : it->second) {
          if (j <= i) continue;
          if (geom::dist2(p, pos_[j]) <= r2) g.add_edge(i, j);
        }
      }
    }
  }
  g.finalize();
  return g;
}

}  // namespace mcds::udg
