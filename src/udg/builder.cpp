#include "udg/builder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"

namespace mcds::udg {

using geom::Vec2;
using graph::Graph;
using graph::NodeId;

namespace {
// Packs a 2-D grid cell into one key. Cells are bounded by the
// deployment region so 32-bit halves are ample.
[[nodiscard]] std::uint64_t cell_key(long cx, long cy) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}
}  // namespace

Graph build_udg(std::span<const Vec2> points, double radius) {
  if (!(radius > 0.0)) {
    throw std::invalid_argument("build_udg: radius must be positive");
  }
  Graph g(points.size());
  if (points.size() < 2) {
    g.finalize();
    return g;
  }

  std::unordered_map<std::uint64_t, std::vector<NodeId>> grid;
  // There are at most n occupied cells, and unordered_map::reserve takes
  // an *element* count — reserving 2n only inflated the bucket array
  // (~-4% build time at n=4096 after right-sizing, see BENCH_phase2.json
  // BM_BuildUdg trajectory).
  grid.reserve(points.size());
  const auto cell_of = [radius](Vec2 p) {
    return std::pair{static_cast<long>(std::floor(p.x / radius)),
                     static_cast<long>(std::floor(p.y / radius))};
  };
  // Each point's cell is needed twice (insert + neighborhood scan);
  // compute it once and keep the indices hot.
  std::vector<std::pair<long, long>> cells(points.size());
  for (NodeId i = 0; i < points.size(); ++i) {
    cells[i] = cell_of(points[i]);
    grid[cell_key(cells[i].first, cells[i].second)].push_back(i);
  }

  const double r2 = radius * radius;
  for (NodeId i = 0; i < points.size(); ++i) {
    const auto [cx, cy] = cells[i];
    for (long dy = -1; dy <= 1; ++dy) {
      for (long dx = -1; dx <= 1; ++dx) {
        const auto it = grid.find(cell_key(cx + dx, cy + dy));
        if (it == grid.end()) continue;
        for (const NodeId j : it->second) {
          if (j <= i) continue;
          if (geom::dist2(points[i], points[j]) <= r2) g.add_edge(i, j);
        }
      }
    }
  }
  g.finalize();
  return g;
}

Graph build_udg(std::span<const Vec2> points, double radius,
                par::ThreadPool& pool) {
  if (!(radius > 0.0)) {
    throw std::invalid_argument("build_udg: radius must be positive");
  }
  Graph g(points.size());
  if (points.size() < 2) {
    g.finalize();
    return g;
  }

  // Serial prologue, identical to build_udg: cell assignment and the
  // occupied-cell index. The map is read-only once the sweep starts, so
  // workers share it without synchronization.
  std::unordered_map<std::uint64_t, std::vector<NodeId>> grid;
  grid.reserve(points.size());
  const auto cell_of = [radius](Vec2 p) {
    return std::pair{static_cast<long>(std::floor(p.x / radius)),
                     static_cast<long>(std::floor(p.y / radius))};
  };
  std::vector<std::pair<long, long>> cells(points.size());
  for (NodeId i = 0; i < points.size(); ++i) {
    cells[i] = cell_of(points[i]);
    grid[cell_key(cells[i].first, cells[i].second)].push_back(i);
  }

  // Fan the distance tests over point ranges. Each chunk appends to its
  // own edge list; chunk boundaries depend only on n and the pool size,
  // and lists are merged in chunk index order, so the edge sequence fed
  // to the graph — and therefore the finalized CSR — is reproducible at
  // any thread count.
  const double r2 = radius * radius;
  const std::size_t workers = pool.size();
  const std::size_t grain = std::max<std::size_t>(
      64, points.size() / std::max<std::size_t>(workers * 8, 1));
  const std::size_t chunks = (points.size() - 1) / grain + 1;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> chunk_edges(chunks);
  par::parallel_for(
      &pool, points.size(), grain,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        auto& edges = chunk_edges[chunk];
        for (NodeId i = static_cast<NodeId>(begin); i < end; ++i) {
          const auto [cx, cy] = cells[i];
          for (long dy = -1; dy <= 1; ++dy) {
            for (long dx = -1; dx <= 1; ++dx) {
              const auto it = grid.find(cell_key(cx + dx, cy + dy));
              if (it == grid.end()) continue;
              for (const NodeId j : it->second) {
                if (j <= i) continue;
                if (geom::dist2(points[i], points[j]) <= r2) {
                  edges.emplace_back(i, j);
                }
              }
            }
          }
        }
      });
  for (const auto& edges : chunk_edges) {
    for (const auto& [u, v] : edges) g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

Graph build_udg_naive(std::span<const Vec2> points, double radius) {
  if (!(radius > 0.0)) {
    throw std::invalid_argument("build_udg_naive: radius must be positive");
  }
  Graph g(points.size());
  const double r2 = radius * radius;
  for (NodeId i = 0; i < points.size(); ++i) {
    for (NodeId j = i + 1; j < points.size(); ++j) {
      if (geom::dist2(points[i], points[j]) <= r2) g.add_edge(i, j);
    }
  }
  g.finalize();
  return g;
}

}  // namespace mcds::udg
