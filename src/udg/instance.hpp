#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/graph.hpp"
#include "sim/rng.hpp"
#include "udg/deployment.hpp"

/// \file instance.hpp
/// A generated UDG workload instance: the deployed points plus the
/// induced unit-disk graph, with helpers to obtain *connected* instances
/// (all CDS algorithms and all of the paper's bounds assume a connected
/// topology).

namespace mcds::udg {

/// A unit-disk graph instance.
struct UdgInstance {
  std::vector<geom::Vec2> points;  ///< node positions
  graph::Graph graph;              ///< induced UDG (radius below)
  double radius = 1.0;             ///< communication radius
  std::uint64_t seed = 0;          ///< seed that produced this instance
};

/// Parameters for random instance generation.
struct InstanceParams {
  DeploymentModel model = DeploymentModel::kUniformSquare;
  std::size_t nodes = 100;
  double side = 10.0;     ///< dominant extent of the deployment region
  double radius = 1.0;    ///< communication radius
  std::size_t max_retries = 200;  ///< attempts to hit a connected topology
};

/// Generates one instance from \p params and \p seed (no connectivity
/// requirement).
[[nodiscard]] UdgInstance generate_instance(const InstanceParams& params,
                                            std::uint64_t seed);

/// Generates a *connected* instance: redraws (up to max_retries) until
/// the topology is connected. Returns std::nullopt if no connected
/// topology was found — callers decide whether that is an error.
[[nodiscard]] std::optional<UdgInstance> generate_connected_instance(
    const InstanceParams& params, std::uint64_t seed);

/// Like generate_connected_instance but keeps only the largest connected
/// component when full connectivity cannot be reached; never fails for
/// nodes >= 1. The returned instance's points/graph are the component.
[[nodiscard]] UdgInstance generate_largest_component_instance(
    const InstanceParams& params, std::uint64_t seed);

}  // namespace mcds::udg
