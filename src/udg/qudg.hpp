#pragma once

#include <span>

#include "geom/vec2.hpp"
#include "graph/graph.hpp"
#include "sim/rng.hpp"

/// \file qudg.hpp
/// Quasi unit-disk graphs: the standard robustness model for real
/// radios. Links shorter than r_min always exist, links longer than
/// r_max never exist, and links in between exist with probability
/// decaying linearly in the distance. The paper's guarantees are proven
/// for exact UDGs; the robustness bench (E17) measures how the
/// algorithms behave when the model is perturbed.

namespace mcds::udg {

/// Builds a quasi-UDG over \p points. Preconditions:
/// 0 < r_min <= r_max. With r_min == r_max this is exactly the UDG of
/// radius r_min. Randomness is drawn from \p rng (deterministic per
/// seed); each candidate edge consumes exactly one variate.
[[nodiscard]] graph::Graph build_quasi_udg(std::span<const geom::Vec2> points,
                                           double r_min, double r_max,
                                           sim::Rng& rng);

}  // namespace mcds::udg
