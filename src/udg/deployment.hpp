#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "sim/rng.hpp"

/// \file deployment.hpp
/// Node deployment (placement) models for wireless ad hoc network
/// workloads. All models are deterministic given an Rng.

namespace mcds::udg {

/// Deployment model selector, used by the sweep harness.
enum class DeploymentModel {
  kUniformSquare,   ///< i.i.d. uniform in an axis-aligned square
  kUniformDisk,     ///< i.i.d. uniform in a disk
  kPerturbedGrid,   ///< grid points jittered by a fraction of the pitch
  kGaussianCluster, ///< mixture of Gaussian clusters with uniform centers
  kCorridor,        ///< uniform in a long thin rectangle (linear network)
};

/// Printable name of a deployment model.
[[nodiscard]] const char* to_string(DeploymentModel m) noexcept;

/// \p n i.i.d. uniform points in the square [0, side] x [0, side].
[[nodiscard]] std::vector<geom::Vec2> deploy_uniform_square(std::size_t n,
                                                            double side,
                                                            sim::Rng& rng);

/// \p n i.i.d. uniform points in the disk of the given radius centered at
/// (radius, radius).
[[nodiscard]] std::vector<geom::Vec2> deploy_uniform_disk(std::size_t n,
                                                          double radius,
                                                          sim::Rng& rng);

/// ~n points on a jittered grid filling [0, side]^2: the ceil(sqrt(n))^2
/// grid is jittered per point by uniform(-jitter, jitter) * pitch and the
/// first n points (row-major) are kept.
[[nodiscard]] std::vector<geom::Vec2> deploy_perturbed_grid(std::size_t n,
                                                            double side,
                                                            double jitter,
                                                            sim::Rng& rng);

/// \p n points from \p clusters Gaussian clusters: centers uniform in
/// [0, side]^2, per-cluster stdev \p sigma, points assigned round-robin.
/// Points are clamped to the deployment square.
[[nodiscard]] std::vector<geom::Vec2> deploy_gaussian_clusters(
    std::size_t n, double side, std::size_t clusters, double sigma,
    sim::Rng& rng);

/// \p n i.i.d. uniform points in [0, length] x [0, width] (width is the
/// short side; models vehicular / corridor topologies).
[[nodiscard]] std::vector<geom::Vec2> deploy_corridor(std::size_t n,
                                                      double length,
                                                      double width,
                                                      sim::Rng& rng);

/// Dispatch helper used by the sweep harness: deploys \p n nodes in a
/// region whose dominant extent is \p side under the given model.
[[nodiscard]] std::vector<geom::Vec2> deploy(DeploymentModel m, std::size_t n,
                                             double side, sim::Rng& rng);

}  // namespace mcds::udg
