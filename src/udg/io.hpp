#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geom/vec2.hpp"

/// \file io.hpp
/// Plain-text persistence for deployments, so instances can be shared
/// between the CLI, external tools and regression corpora. Format:
///
///   mcds-points 1        (magic + version)
///   <count>
///   <x> <y>              (one node per line, full double precision)

namespace mcds::udg {

/// Writes \p points in the mcds-points format.
void save_points(std::ostream& os, const std::vector<geom::Vec2>& points);

/// Writes \p points to \p path. Throws std::runtime_error on I/O error.
void save_points_file(const std::string& path,
                      const std::vector<geom::Vec2>& points);

/// Reads an mcds-points stream. Throws std::runtime_error on malformed
/// input (bad magic, wrong count, non-numeric coordinates).
[[nodiscard]] std::vector<geom::Vec2> load_points(std::istream& is);

/// Reads \p path. Throws std::runtime_error on I/O or format error.
[[nodiscard]] std::vector<geom::Vec2> load_points_file(
    const std::string& path);

}  // namespace mcds::udg
