#include "udg/instance.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/traversal.hpp"
#include "udg/builder.hpp"

namespace mcds::udg {

UdgInstance generate_instance(const InstanceParams& params,
                              std::uint64_t seed) {
  if (params.nodes == 0) {
    throw std::invalid_argument("generate_instance: need >= 1 node");
  }
  sim::Rng rng(seed);
  UdgInstance inst;
  inst.points = deploy(params.model, params.nodes, params.side, rng);
  inst.graph = build_udg(inst.points, params.radius);
  inst.radius = params.radius;
  inst.seed = seed;
  return inst;
}

std::optional<UdgInstance> generate_connected_instance(
    const InstanceParams& params, std::uint64_t seed) {
  std::uint64_t sub = seed;
  for (std::size_t attempt = 0; attempt <= params.max_retries; ++attempt) {
    UdgInstance inst = generate_instance(params, sub);
    if (graph::is_connected(inst.graph)) {
      inst.seed = seed;  // report the top-level seed for reproducibility
      return inst;
    }
    sub = sim::splitmix64(sub);
  }
  return std::nullopt;
}

UdgInstance generate_largest_component_instance(const InstanceParams& params,
                                                std::uint64_t seed) {
  if (auto inst = generate_connected_instance(params, seed)) {
    return *std::move(inst);
  }
  // Fall back: keep the largest component of the last redraw.
  UdgInstance inst = generate_instance(params, seed);
  const auto [label, count] = graph::connected_components(inst.graph);
  std::vector<std::size_t> size(count, 0);
  for (const auto lbl : label) ++size[lbl];
  const auto best = static_cast<std::uint32_t>(std::distance(
      size.begin(), std::max_element(size.begin(), size.end())));

  UdgInstance out;
  out.radius = inst.radius;
  out.seed = seed;
  for (std::size_t v = 0; v < inst.points.size(); ++v) {
    if (label[v] == best) out.points.push_back(inst.points[v]);
  }
  out.graph = build_udg(out.points, inst.radius);
  return out;
}

}  // namespace mcds::udg
