#include "udg/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace mcds::udg {

using geom::Vec2;

const char* to_string(DeploymentModel m) noexcept {
  switch (m) {
    case DeploymentModel::kUniformSquare: return "uniform-square";
    case DeploymentModel::kUniformDisk: return "uniform-disk";
    case DeploymentModel::kPerturbedGrid: return "perturbed-grid";
    case DeploymentModel::kGaussianCluster: return "gaussian-cluster";
    case DeploymentModel::kCorridor: return "corridor";
  }
  return "unknown";
}

namespace {
void require_positive(double v, const char* what) {
  if (!(v > 0.0)) {
    throw std::invalid_argument(std::string(what) + " must be positive");
  }
}
}  // namespace

std::vector<Vec2> deploy_uniform_square(std::size_t n, double side,
                                        sim::Rng& rng) {
  require_positive(side, "side");
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return pts;
}

std::vector<Vec2> deploy_uniform_disk(std::size_t n, double radius,
                                      sim::Rng& rng) {
  require_positive(radius, "radius");
  std::vector<Vec2> pts;
  pts.reserve(n);
  const Vec2 c{radius, radius};
  for (std::size_t i = 0; i < n; ++i) {
    // Inverse-CDF sampling: radius ~ sqrt(U) for uniform area density.
    const double r = radius * std::sqrt(rng.uniform01());
    const double a = rng.uniform(0.0, 2.0 * std::numbers::pi);
    pts.push_back(geom::from_polar(c, r, a));
  }
  return pts;
}

std::vector<Vec2> deploy_perturbed_grid(std::size_t n, double side,
                                        double jitter, sim::Rng& rng) {
  require_positive(side, "side");
  if (jitter < 0.0) throw std::invalid_argument("jitter must be >= 0");
  if (n == 0) return {};
  const auto k =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double pitch = side / static_cast<double>(k);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t row = 0; row < k && pts.size() < n; ++row) {
    for (std::size_t col = 0; col < k && pts.size() < n; ++col) {
      const double x = (static_cast<double>(col) + 0.5) * pitch +
                       rng.uniform(-jitter, jitter) * pitch;
      const double y = (static_cast<double>(row) + 0.5) * pitch +
                       rng.uniform(-jitter, jitter) * pitch;
      pts.push_back({std::clamp(x, 0.0, side), std::clamp(y, 0.0, side)});
    }
  }
  return pts;
}

std::vector<Vec2> deploy_gaussian_clusters(std::size_t n, double side,
                                           std::size_t clusters, double sigma,
                                           sim::Rng& rng) {
  require_positive(side, "side");
  require_positive(sigma, "sigma");
  if (clusters == 0) {
    throw std::invalid_argument("clusters must be >= 1");
  }
  std::vector<Vec2> centers;
  centers.reserve(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    centers.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 c = centers[i % clusters];
    const Vec2 p{c.x + sigma * rng.normal(), c.y + sigma * rng.normal()};
    pts.push_back({std::clamp(p.x, 0.0, side), std::clamp(p.y, 0.0, side)});
  }
  return pts;
}

std::vector<Vec2> deploy_corridor(std::size_t n, double length, double width,
                                  sim::Rng& rng) {
  require_positive(length, "length");
  require_positive(width, "width");
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, length), rng.uniform(0.0, width)});
  }
  return pts;
}

std::vector<Vec2> deploy(DeploymentModel m, std::size_t n, double side,
                         sim::Rng& rng) {
  switch (m) {
    case DeploymentModel::kUniformSquare:
      return deploy_uniform_square(n, side, rng);
    case DeploymentModel::kUniformDisk:
      return deploy_uniform_disk(n, side / 2.0, rng);
    case DeploymentModel::kPerturbedGrid:
      return deploy_perturbed_grid(n, side, 0.45, rng);
    case DeploymentModel::kGaussianCluster:
      return deploy_gaussian_clusters(
          n, side, std::max<std::size_t>(2, n / 40), side / 12.0, rng);
    case DeploymentModel::kCorridor:
      return deploy_corridor(n, side * 2.0, std::max(1.5, side / 8.0), rng);
  }
  throw std::invalid_argument("deploy: unknown model");
}

}  // namespace mcds::udg
