#include "udg/qudg.hpp"

#include <cmath>
#include <stdexcept>

namespace mcds::udg {

using geom::Vec2;
using graph::Graph;
using graph::NodeId;

graph::Graph build_quasi_udg(std::span<const Vec2> points, double r_min,
                             double r_max, sim::Rng& rng) {
  if (!(r_min > 0.0) || r_min > r_max) {
    throw std::invalid_argument(
        "build_quasi_udg: need 0 < r_min <= r_max");
  }
  Graph g(points.size());
  const double lo2 = r_min * r_min;
  const double hi2 = r_max * r_max;
  const double band = r_max - r_min;
  // Deterministic edge-candidate order (i < j ascending) so the same
  // seed always yields the same topology.
  for (NodeId i = 0; i < points.size(); ++i) {
    for (NodeId j = i + 1; j < points.size(); ++j) {
      const double d2 = geom::dist2(points[i], points[j]);
      if (d2 > hi2) continue;
      if (d2 <= lo2) {
        g.add_edge(i, j);
        continue;
      }
      // Linearly decaying link probability across the gray zone; note
      // the variate is consumed only for gray-zone pairs.
      const double d = std::sqrt(d2);
      const double p = band > 0.0 ? (r_max - d) / band : 0.0;
      if (rng.uniform01() < p) g.add_edge(i, j);
    }
  }
  g.finalize();
  return g;
}

}  // namespace mcds::udg
