#include "udg/mobility.hpp"

#include <stdexcept>

#include "udg/grid_index.hpp"

namespace mcds::udg {

using geom::Vec2;

RandomWaypoint::RandomWaypoint(std::size_t nodes,
                               const WaypointParams& params,
                               std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (nodes == 0) {
    throw std::invalid_argument("RandomWaypoint: need >= 1 node");
  }
  if (!(params_.side > 0.0)) {
    throw std::invalid_argument("RandomWaypoint: side must be positive");
  }
  if (!(params_.min_speed > 0.0) || params_.min_speed > params_.max_speed) {
    throw std::invalid_argument(
        "RandomWaypoint: need 0 < min_speed <= max_speed");
  }
  positions_.reserve(nodes);
  state_.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    positions_.push_back(
        {rng_.uniform(0.0, params_.side), rng_.uniform(0.0, params_.side)});
    redraw(i);
  }
}

void RandomWaypoint::redraw(std::size_t i) {
  state_[i].target = {rng_.uniform(0.0, params_.side),
                      rng_.uniform(0.0, params_.side)};
  state_[i].speed = rng_.uniform(params_.min_speed, params_.max_speed);
  state_[i].pause_left = 0;
}

void RandomWaypoint::step() {
  ++ticks_;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    NodeState& s = state_[i];
    if (s.pause_left > 0) {
      --s.pause_left;
      if (s.pause_left == 0) redraw(i);
      continue;
    }
    const Vec2 to_target = s.target - positions_[i];
    const double remaining = to_target.norm();
    if (remaining <= s.speed) {
      positions_[i] = s.target;  // arrived; dwell before the next leg
      s.pause_left = params_.pause_ticks;
      if (s.pause_left == 0) redraw(i);
      continue;
    }
    positions_[i] += to_target * (s.speed / remaining);
  }
}

std::vector<ChurnEpoch> churn_schedule(RandomWaypoint& motion, double radius,
                                       std::size_t epochs,
                                       std::size_t ticks_per_epoch,
                                       const ChurnParams& churn,
                                       std::uint64_t seed) {
  if (!(radius > 0.0)) {
    throw std::invalid_argument("churn_schedule: radius must be positive");
  }
  if (!(churn.crash_prob >= 0.0 && churn.crash_prob <= 1.0) ||
      !(churn.recover_prob >= 0.0 && churn.recover_prob <= 1.0)) {
    throw std::invalid_argument(
        "churn_schedule: probabilities must be in [0, 1]");
  }
  sim::Rng rng(seed);
  std::vector<ChurnEpoch> out;
  out.reserve(epochs);
  std::vector<bool> up(motion.positions().size(), true);
  // One grid survives the whole trace; each epoch only re-hashes the
  // nodes that actually moved (waypoint pauses park many of them).
  GridIndex grid(motion.positions(), radius);
  std::vector<geom::Vec2> prev(motion.positions().begin(),
                               motion.positions().end());
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t t = 0; t < ticks_per_epoch; ++t) motion.step();
    ChurnEpoch epoch;
    const std::vector<Vec2>& now = motion.positions();
    for (std::size_t i = 0; i < now.size(); ++i) {
      if (now[i].x == prev[i].x && now[i].y == prev[i].y) continue;
      grid.move(static_cast<graph::NodeId>(i), now[i], epoch.delta);
      prev[i] = now[i];
    }
    // Per-move deltas are relative to intermediate states; cancelling
    // matched add/remove pairs leaves the net epoch-boundary delta.
    epoch.delta.normalize();
    epoch.topology = grid.build_graph();
    for (std::size_t i = 0; i < up.size(); ++i) {
      const double p = up[i] ? churn.crash_prob : churn.recover_prob;
      // One draw per node per epoch, flipped or not — keeps the trace a
      // pure function of (motion state, seed).
      const bool flip = rng.uniform01() < p;
      if (flip) up[i] = !up[i];
    }
    epoch.up = up;
    out.push_back(std::move(epoch));
  }
  return out;
}

}  // namespace mcds::udg
