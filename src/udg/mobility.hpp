#pragma once

#include <vector>

#include "geom/vec2.hpp"
#include "graph/delta_graph.hpp"
#include "graph/graph.hpp"
#include "sim/rng.hpp"

/// \file mobility.hpp
/// Random-waypoint mobility — the standard MANET evaluation model. Each
/// node picks a uniform destination in the field and a uniform speed,
/// travels there in straight-line steps, pauses, and repeats. Drives
/// the maintenance experiments (E18) and the topology_maintenance
/// example with realistic correlated motion (unlike i.i.d. jitter,
/// waypoint motion has momentum, so topologies change smoothly).

namespace mcds::udg {

/// Parameters of the random-waypoint process.
struct WaypointParams {
  double side = 10.0;       ///< square field [0, side]^2
  double min_speed = 0.05;  ///< per-tick distance lower bound (> 0)
  double max_speed = 0.5;   ///< per-tick distance upper bound
  std::size_t pause_ticks = 2;  ///< dwell time at each waypoint
};

/// The mobility process over a fixed set of nodes.
class RandomWaypoint {
 public:
  /// Starts every node at a uniform position with a fresh waypoint.
  /// Preconditions: nodes >= 1, 0 < min_speed <= max_speed, side > 0.
  RandomWaypoint(std::size_t nodes, const WaypointParams& params,
                 std::uint64_t seed);

  /// Advances every node by one tick (move toward its waypoint by its
  /// speed; on arrival, pause then redraw waypoint and speed).
  void step();

  /// Current node positions.
  [[nodiscard]] const std::vector<geom::Vec2>& positions() const noexcept {
    return positions_;
  }

  /// Number of ticks executed so far.
  [[nodiscard]] std::size_t ticks() const noexcept { return ticks_; }

 private:
  struct NodeState {
    geom::Vec2 target;
    double speed = 0.0;
    std::size_t pause_left = 0;
  };

  void redraw(std::size_t i);

  WaypointParams params_;
  sim::Rng rng_;
  std::vector<geom::Vec2> positions_;
  std::vector<NodeState> state_;
  std::size_t ticks_ = 0;
};

/// One epoch of a churn trace: the unit-disk topology over *all* nodes
/// at the epoch's positions, plus which nodes are alive after the
/// epoch's crashes and recoveries. Mobility moves everyone (a crashed
/// radio still rides its vehicle); consumers induce the survivor graph
/// from `up` as needed.
struct ChurnEpoch {
  graph::Graph topology;
  std::vector<bool> up;
  /// Net position-induced edge changes versus the previous epoch's
  /// topology (versus the initial positions for epoch 0), over *all*
  /// nodes — liveness lives in `up`, exactly like `topology`. Canonical
  /// (u < v, sorted, added/removed disjoint). Consumers that only want
  /// the full graphs can ignore it.
  graph::EdgeDelta delta;
};

/// Parameters of the fail-stop churn process layered over mobility.
struct ChurnParams {
  double crash_prob = 0.1;    ///< per-epoch chance a live node crashes
  double recover_prob = 0.3;  ///< per-epoch chance a crashed node returns
};

/// Drives \p motion for \p epochs × \p ticks_per_epoch ticks, updating
/// a persistent GridIndex with each epoch's motion (only nodes that
/// actually moved touch the grid — waypoint pauses leave many parked)
/// and then crash/recovering nodes independently per \p churn, seeded
/// by \p seed (deterministic, independent of the motion's own stream).
/// Each epoch carries the full topology (identical CSR to a
/// from-scratch build_udg at those positions), the net edge delta since
/// the previous epoch, and the liveness vector. Epoch e's liveness
/// evolves from epoch e-1's; all nodes start alive.
[[nodiscard]] std::vector<ChurnEpoch> churn_schedule(
    RandomWaypoint& motion, double radius, std::size_t epochs,
    std::size_t ticks_per_epoch, const ChurnParams& churn, std::uint64_t seed);

}  // namespace mcds::udg
