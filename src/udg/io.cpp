#include "udg/io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace mcds::udg {

namespace {
constexpr const char* kMagic = "mcds-points";
constexpr int kVersion = 1;
}  // namespace

void save_points(std::ostream& os, const std::vector<geom::Vec2>& points) {
  os << kMagic << ' ' << kVersion << '\n' << points.size() << '\n';
  os << std::setprecision(17);
  for (const auto p : points) os << p.x << ' ' << p.y << '\n';
}

void save_points_file(const std::string& path,
                      const std::vector<geom::Vec2>& points) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("save_points: cannot open " + path);
  save_points(file, points);
  if (!file) throw std::runtime_error("save_points: write failed " + path);
}

std::vector<geom::Vec2> load_points(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic) {
    throw std::runtime_error("load_points: not an mcds-points stream");
  }
  if (version != kVersion) {
    throw std::runtime_error("load_points: unsupported version " +
                             std::to_string(version));
  }
  std::size_t count = 0;
  if (!(is >> count)) {
    throw std::runtime_error("load_points: missing point count");
  }
  std::vector<geom::Vec2> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    geom::Vec2 p;
    if (!(is >> p.x >> p.y)) {
      throw std::runtime_error("load_points: truncated at point " +
                               std::to_string(i));
    }
    points.push_back(p);
  }
  return points;
}

std::vector<geom::Vec2> load_points_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_points: cannot open " + path);
  return load_points(file);
}

}  // namespace mcds::udg
