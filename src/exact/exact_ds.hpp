#pragma once

#include <algorithm>
#include <stdexcept>

#include "graph/small_graph.hpp"

/// \file exact_ds.hpp
/// Exact minimum dominating set (the domination number γ(G)) via branch
/// and bound on undominated vertices, for SmallGraph and SmallGraph128.
/// γ(G) is a lower bound on γ_c(G) and seeds the CDS solver.

namespace mcds::exact {

// Bring both mask widths' popcount/lowest_bit overloads into scope
// (fundamental mask types have no associated namespace for ADL).
using graph::lowest_bit;
using graph::popcount;

namespace detail {

template <class SG>
struct DsSolver {
  using M = typename SG::mask_type;

  const SG& g;
  int max_closed_degree;
  int best_size;
  M best_set{0};

  // Branches on an undominated vertex with the fewest closed-
  // neighborhood candidates: one of them must join the dominating set.
  void solve(M chosen, int chosen_size, M dominated) {
    if (dominated == g.all()) {
      if (chosen_size < best_size) {
        best_size = chosen_size;
        best_set = chosen;
      }
      return;
    }
    const int undominated = popcount(g.all() & ~dominated);
    // Each further vertex dominates at most Δ+1 new vertices.
    const int lb = (undominated + max_closed_degree - 1) / max_closed_degree;
    if (chosen_size + lb >= best_size) return;

    // Pick the undominated vertex with the smallest closed neighborhood
    // — the tightest branching constraint.
    M und = g.all() & ~dominated;
    graph::NodeId pick = lowest_bit(und);
    int pick_opts = static_cast<int>(graph::kMaskBits<M>) + 1;
    while (!(und == M{0})) {
      const graph::NodeId v = lowest_bit(und);
      und &= und - M{1};
      const int opts = popcount(g.closed_neighbors(v));
      if (opts < pick_opts) {
        pick_opts = opts;
        pick = v;
      }
    }
    M options = g.closed_neighbors(pick);
    while (!(options == M{0})) {
      const graph::NodeId w = lowest_bit(options);
      options &= options - M{1};
      solve(chosen | SG::bit(w), chosen_size + 1,
            dominated | g.closed_neighbors(w));
    }
  }
};

// Greedy max-coverage upper bound to seed the search.
template <class SG>
typename SG::mask_type greedy_ds(const SG& g) {
  using M = typename SG::mask_type;
  M chosen{0}, dominated{0};
  while (!(dominated == g.all())) {
    graph::NodeId best = 0;
    int best_gain = -1;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const int gain = popcount(g.closed_neighbors(v) & ~dominated);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    chosen |= SG::bit(best);
    dominated |= g.closed_neighbors(best);
  }
  return chosen;
}

}  // namespace detail

/// A minimum dominating set of \p g as a bitmask. Precondition: g has
/// at least one node.
template <class SG>
[[nodiscard]] typename SG::mask_type minimum_dominating_set(const SG& g) {
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("minimum_dominating_set: empty graph");
  }
  int max_cd = 1;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    max_cd = std::max(max_cd, popcount(g.closed_neighbors(v)));
  }
  const auto seed = detail::greedy_ds(g);
  detail::DsSolver<SG> solver{g, max_cd, popcount(seed), seed};
  solver.solve(typename SG::mask_type{0}, 0, typename SG::mask_type{0});
  return solver.best_set;
}

/// The domination number γ(G).
template <class SG>
[[nodiscard]] std::size_t domination_number(const SG& g) {
  return static_cast<std::size_t>(popcount(minimum_dominating_set(g)));
}

}  // namespace mcds::exact
