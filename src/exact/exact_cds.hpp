#pragma once

#include <algorithm>
#include <stdexcept>

#include "exact/exact_ds.hpp"
#include "graph/small_graph.hpp"

/// \file exact_cds.hpp
/// Exact minimum connected dominating set (the connected domination
/// number γ_c(G)) for SmallGraph (<= 64 nodes) and SmallGraph128
/// (<= 128 nodes). This is the OPT against which the paper's
/// approximation ratios (7⅓ and 6 7/18) are measured in the validation
/// experiments E4–E6.
///
/// Method: iterative deepening on the target size k, enumerating
/// connected vertex sets exactly once each (min-index rooting plus the
/// classic extension/ban scheme), pruned by domination reachability and
/// a coverage counting bound.

namespace mcds::exact {

// Bring both mask widths' popcount/lowest_bit overloads into scope
// (fundamental mask types have no associated namespace for ADL).
using graph::lowest_bit;
using graph::popcount;

namespace detail {

template <class SG>
struct CdsSolver {
  using M = typename SG::mask_type;

  const SG& g;
  int k;                ///< current target size (iterative deepening)
  int max_closed_degree;
  M found{0};           ///< first CDS of size k found, 0 if none yet

  // S: chosen connected set; ext: frontier vertices eligible to extend
  // S; avail: vertices still allowed in this subtree; dom: N[S].
  void dfs(M S, M ext, M avail, M dom, int size) {
    if (!(found == M{0})) return;
    if (size == k) {
      if (dom == g.all()) found = S;
      return;
    }
    // Coverage bound: each further vertex dominates <= Δ+1 new nodes.
    const int undominated = popcount(g.all() & ~dom);
    if (undominated > (k - size) * max_closed_degree) return;
    // Reachability bound: everything we could ever dominate from here.
    if (!((dom | g.dominated_by(avail)) == g.all())) return;
    // Size bound: S can only grow within avail.
    if (size + popcount(avail) < k) return;

    while (!(ext == M{0})) {
      const graph::NodeId v = lowest_bit(ext);
      const M bit = SG::bit(v);
      ext &= ~bit;
      avail &= ~bit;  // v is consumed: in S for the child, banned after
      dfs(S | bit, ext | (g.neighbors(v) & avail), avail,
          dom | g.closed_neighbors(v), size + 1);
      if (!(found == M{0})) return;
    }
  }
};

}  // namespace detail

/// A minimum connected dominating set of \p g as a bitmask.
/// Preconditions: g is non-empty and connected. For a single-node graph
/// the answer is that node (γ_c = 1 by convention).
template <class SG>
[[nodiscard]] typename SG::mask_type minimum_connected_dominating_set(
    const SG& g) {
  using M = typename SG::mask_type;
  const std::size_t n = g.num_nodes();
  if (n == 0) {
    throw std::invalid_argument(
        "minimum_connected_dominating_set: empty graph");
  }
  if (!g.is_connected(g.all())) {
    throw std::invalid_argument(
        "minimum_connected_dominating_set: graph must be connected");
  }
  if (n == 1) return M{1};

  // k = 1: any vertex whose closed neighborhood is everything.
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.closed_neighbors(v) == g.all()) return SG::bit(v);
  }

  int max_cd = 1;
  for (graph::NodeId v = 0; v < n; ++v) {
    max_cd = std::max(max_cd, popcount(g.closed_neighbors(v)));
  }
  // γ_c >= γ, and we already ruled out k = 1.
  const int k0 = std::max<int>(2, static_cast<int>(domination_number(g)));

  for (int k = k0; k <= static_cast<int>(n); ++k) {
    detail::CdsSolver<SG> solver{g, k, max_cd};
    for (graph::NodeId r = 0; r < n && solver.found == M{0}; ++r) {
      // Enumerate connected sets whose minimum element is r.
      const M higher = g.all() & ~((M{2} << r) - M{1});  // {v : v > r}
      solver.dfs(SG::bit(r), g.neighbors(r) & higher, higher,
                 g.closed_neighbors(r), 1);
    }
    if (!(solver.found == M{0})) return solver.found;
  }
  return g.all();  // unreachable for connected graphs (V is a CDS)
}

/// The connected domination number γ_c(G).
template <class SG>
[[nodiscard]] std::size_t connected_domination_number(const SG& g) {
  return static_cast<std::size_t>(
      popcount(minimum_connected_dominating_set(g)));
}

}  // namespace mcds::exact
