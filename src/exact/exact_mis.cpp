#include "exact/exact_mis.hpp"

namespace mcds::exact {

// Explicit instantiations for the two supported graph widths.
template graph::Mask maximum_independent_set<graph::SmallGraph>(
    const graph::SmallGraph&);
template graph::Mask128 maximum_independent_set<graph::SmallGraph128>(
    const graph::SmallGraph128&);
template std::size_t independence_number<graph::SmallGraph>(
    const graph::SmallGraph&);
template std::size_t independence_number<graph::SmallGraph128>(
    const graph::SmallGraph128&);

}  // namespace mcds::exact
