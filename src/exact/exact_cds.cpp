#include "exact/exact_cds.hpp"

namespace mcds::exact {

template graph::Mask minimum_connected_dominating_set<graph::SmallGraph>(
    const graph::SmallGraph&);
template graph::Mask128
minimum_connected_dominating_set<graph::SmallGraph128>(
    const graph::SmallGraph128&);
template std::size_t connected_domination_number<graph::SmallGraph>(
    const graph::SmallGraph&);
template std::size_t connected_domination_number<graph::SmallGraph128>(
    const graph::SmallGraph128&);

}  // namespace mcds::exact
