#pragma once

#include "graph/small_graph.hpp"

/// \file brute_force.hpp
/// Exhaustive-enumeration reference solvers. Exponential in n — intended
/// only to cross-check the branch-and-bound solvers in tests (n <= ~20).

namespace mcds::exact {

/// α(G) by enumerating all 2^n subsets. Precondition: n <= 25.
[[nodiscard]] std::size_t independence_number_brute_force(
    const graph::SmallGraph& g);

/// γ(G) by enumerating all 2^n subsets. Precondition: n <= 25.
[[nodiscard]] std::size_t domination_number_brute_force(
    const graph::SmallGraph& g);

/// γ_c(G) by enumerating all 2^n subsets. Preconditions: n <= 25 and
/// g connected.
[[nodiscard]] std::size_t connected_domination_number_brute_force(
    const graph::SmallGraph& g);

/// The (1,m)-CDS predicate on a subset mask: \p s is non-empty, every
/// node outside \p s has at least \p m neighbors inside it, and G[s] is
/// connected. The exact counterpart of core::check_kmcds with k = 1 —
/// the differential suite pins the two against each other.
[[nodiscard]] bool is_m_fold_cds(const graph::SmallGraph& g, graph::Mask s,
                                 std::uint32_t m);

/// Minimum size of a (1,m)-CDS by enumerating all 2^n subsets, or
/// num_nodes() when only the full vertex set qualifies (V always does:
/// no outside node remains). Preconditions: n <= 25 and g connected.
[[nodiscard]] std::size_t m_fold_cds_number_brute_force(
    const graph::SmallGraph& g, std::uint32_t m);

}  // namespace mcds::exact
