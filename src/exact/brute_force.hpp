#pragma once

#include "graph/small_graph.hpp"

/// \file brute_force.hpp
/// Exhaustive-enumeration reference solvers. Exponential in n — intended
/// only to cross-check the branch-and-bound solvers in tests (n <= ~20).

namespace mcds::exact {

/// α(G) by enumerating all 2^n subsets. Precondition: n <= 25.
[[nodiscard]] std::size_t independence_number_brute_force(
    const graph::SmallGraph& g);

/// γ(G) by enumerating all 2^n subsets. Precondition: n <= 25.
[[nodiscard]] std::size_t domination_number_brute_force(
    const graph::SmallGraph& g);

/// γ_c(G) by enumerating all 2^n subsets. Preconditions: n <= 25 and
/// g connected.
[[nodiscard]] std::size_t connected_domination_number_brute_force(
    const graph::SmallGraph& g);

}  // namespace mcds::exact
