#include "exact/exact_connectors.hpp"

namespace mcds::exact {

template graph::Mask minimum_connectors<graph::SmallGraph>(
    const graph::SmallGraph&, graph::Mask);
template graph::Mask128 minimum_connectors<graph::SmallGraph128>(
    const graph::SmallGraph128&, graph::Mask128);
template std::size_t minimum_connector_count<graph::SmallGraph>(
    const graph::SmallGraph&, graph::Mask);
template std::size_t minimum_connector_count<graph::SmallGraph128>(
    const graph::SmallGraph128&, graph::Mask128);

}  // namespace mcds::exact
