#pragma once

#include "graph/small_graph.hpp"

/// \file exact_mis.hpp
/// Exact maximum independent set (the independence number α(G)) via
/// branch and bound, for SmallGraph (<= 64 nodes) and SmallGraph128
/// (<= 128 nodes). Used to validate Corollary 7:
/// α(G) <= (11/3)·γ_c(G) + 1 on small random UDGs.

namespace mcds::exact {

// Bring both mask widths' popcount/lowest_bit overloads into scope
// (fundamental mask types have no associated namespace for ADL).
using graph::lowest_bit;
using graph::popcount;

namespace detail {

template <class SG>
struct MisSolver {
  using M = typename SG::mask_type;

  const SG& g;
  int best_size = 0;
  M best_set{0};

  // Upper bound on the independent set inside `cand`: a greedy maximal
  // matching in G[cand] — every matched edge contributes at most one
  // vertex, every unmatched vertex at most itself. Much tighter than
  // |cand| on sparse graphs (paths, cycles) where the plain bound makes
  // the search blow up.
  [[nodiscard]] int upper_bound(M cand) const {
    int matched = 0;
    M rest = cand;
    while (!(rest == M{0})) {
      const graph::NodeId v = lowest_bit(rest);
      rest &= rest - M{1};
      const M nb = g.neighbors(v) & rest;
      if (!(nb == M{0})) {
        rest &= ~SG::bit(lowest_bit(nb));
        ++matched;
      }
    }
    return popcount(cand) - matched;
  }

  // Branch and bound over the candidate set `cand`; `current` is the
  // partial independent set already chosen.
  void solve(M cand, M current, int current_size) {
    if (current_size > best_size) {
      best_size = current_size;
      best_set = current;
    }
    if (current_size + upper_bound(cand) <= best_size) return;
    if (cand == M{0}) return;

    // Pick the candidate with the largest degree inside `cand`; taking
    // it removes the most candidates, shrinking the tree fastest.
    // Vertices with no candidate neighbors are forced in.
    M rest = cand;
    graph::NodeId pick = lowest_bit(cand);
    int pick_deg = -1;
    while (!(rest == M{0})) {
      const graph::NodeId v = lowest_bit(rest);
      rest &= rest - M{1};
      const int d = popcount(g.neighbors(v) & cand);
      if (d == 0) {
        // Isolated in the candidate graph: always include, no branch.
        cand &= ~SG::bit(v);
        current |= SG::bit(v);
        ++current_size;
        if (current_size > best_size) {
          best_size = current_size;
          best_set = current;
        }
        continue;
      }
      if (d > pick_deg) {
        pick_deg = d;
        pick = v;
      }
    }
    if (cand == M{0}) return;
    if (current_size + upper_bound(cand) <= best_size) return;

    // Branch 1: include `pick`. Branch 2: exclude it.
    solve(cand & ~g.closed_neighbors(pick), current | SG::bit(pick),
          current_size + 1);
    solve(cand & ~SG::bit(pick), current, current_size);
  }
};

}  // namespace detail

/// A maximum independent set of \p g as a bitmask.
template <class SG>
[[nodiscard]] typename SG::mask_type maximum_independent_set(const SG& g) {
  detail::MisSolver<SG> solver{g};
  solver.solve(g.all(), typename SG::mask_type{0}, 0);
  return solver.best_set;
}

/// The independence number α(G).
template <class SG>
[[nodiscard]] std::size_t independence_number(const SG& g) {
  return static_cast<std::size_t>(popcount(maximum_independent_set(g)));
}

}  // namespace mcds::exact
