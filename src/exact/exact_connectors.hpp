#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/small_graph.hpp"

/// \file exact_connectors.hpp
/// Exact phase 2: given the dominator set I (a maximal independent
/// set), find a minimum connector set C ⊆ V \ I such that G[I ∪ C] is
/// connected. This is the Steiner-connectivity subproblem both Section
/// III (tree parents) and Section IV (max-gain greedy) approximate; the
/// exact solution lets the ablation bench measure how much either
/// phase-2 rule leaves on the table for a *fixed* phase 1.

namespace mcds::exact {

// Bring both mask widths' popcount/lowest_bit overloads into scope
// (fundamental mask types have no associated namespace for ADL).
using graph::lowest_bit;
using graph::popcount;

namespace detail {

template <class SG>
struct ConnectorSolver {
  using M = typename SG::mask_type;

  const SG& g;
  M dominators;
  std::vector<graph::NodeId> candidates;  ///< V \ I, by initial gain
  int max_degree = 1;
  int k = 0;          ///< current size budget (iterative deepening)
  M found{0};
  bool has_found = false;

  // Depth-first over candidate subsets in candidate-list order (each
  // subset visited once). `idx` = next candidate position, `chosen` =
  // connectors picked so far.
  void dfs(std::size_t idx, M chosen, int size) {
    if (has_found) return;
    const std::size_t q = g.count_components(dominators | chosen);
    if (q == 1) {
      found = chosen;
      has_found = true;
      return;
    }
    // Each extra node reduces the component count by at most its degree
    // (<= max_degree).
    const int lb =
        static_cast<int>((q - 1 + static_cast<std::size_t>(max_degree) - 1) /
                         static_cast<std::size_t>(max_degree));
    if (size + lb > k) return;
    if (idx >= candidates.size()) return;
    // Even taking every remaining candidate must connect the set.
    M remaining{0};
    for (std::size_t i = idx; i < candidates.size(); ++i) {
      remaining |= SG::bit(candidates[i]);
    }
    if (!g.is_connected(dominators | chosen | remaining)) return;

    for (std::size_t i = idx; i < candidates.size(); ++i) {
      if (has_found) return;
      dfs(i + 1, chosen | SG::bit(candidates[i]), size + 1);
    }
  }
};

}  // namespace detail

/// A minimum connector set for \p dominators (bitmask) in \p g, as a
/// bitmask disjoint from dominators. Preconditions: g connected,
/// dominators non-empty and dominating (the usual phase-1 output).
/// Iterative deepening over |C| with connectivity pruning.
template <class SG>
[[nodiscard]] typename SG::mask_type minimum_connectors(
    const SG& g, typename SG::mask_type dominators) {
  using M = typename SG::mask_type;
  dominators &= g.all();
  if (dominators == M{0}) {
    throw std::invalid_argument("minimum_connectors: empty dominator set");
  }
  if (!g.is_connected(g.all())) {
    throw std::invalid_argument(
        "minimum_connectors: graph must be connected");
  }
  if (!g.is_dominating(dominators)) {
    throw std::invalid_argument(
        "minimum_connectors: dominators must dominate (phase-1 output)");
  }
  if (g.is_connected(dominators)) return M{0};

  detail::ConnectorSolver<SG> solver{g, dominators};
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    solver.max_degree = std::max(solver.max_degree,
                                 popcount(g.neighbors(v)));
    if ((dominators & SG::bit(v)) == M{0}) {
      solver.candidates.push_back(v);
    }
  }
  // Order candidates by how many dominator-components they touch
  // (descending) so the first solutions appear early.
  std::vector<std::size_t> gain(g.num_nodes(), 0);
  const std::size_t q0 = g.count_components(dominators);
  for (const graph::NodeId v : solver.candidates) {
    gain[v] = q0 - g.count_components(dominators | SG::bit(v));
  }
  std::stable_sort(
      solver.candidates.begin(), solver.candidates.end(),
      [&gain](graph::NodeId a, graph::NodeId b) { return gain[a] > gain[b]; });

  const int start = static_cast<int>(
      (q0 - 1 + static_cast<std::size_t>(solver.max_degree) - 1) /
      static_cast<std::size_t>(solver.max_degree));
  for (int k = std::max(1, start);
       k <= static_cast<int>(solver.candidates.size()); ++k) {
    solver.k = k;
    solver.has_found = false;
    solver.dfs(0, M{0}, 0);
    if (solver.has_found) return solver.found;
  }
  throw std::logic_error(
      "minimum_connectors: no connector set found in a connected graph");
}

/// popcount(minimum_connectors(...)).
template <class SG>
[[nodiscard]] std::size_t minimum_connector_count(
    const SG& g, typename SG::mask_type dominators) {
  return static_cast<std::size_t>(
      popcount(minimum_connectors(g, dominators)));
}

}  // namespace mcds::exact
