#include "exact/brute_force.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mcds::exact {

using graph::Mask;
using graph::SmallGraph;

namespace {
void check_size(const SmallGraph& g) {
  if (g.num_nodes() > 25) {
    throw std::invalid_argument("brute force limited to 25 nodes");
  }
}
}  // namespace

std::size_t independence_number_brute_force(const SmallGraph& g) {
  check_size(g);
  const Mask end = g.all();
  std::size_t best = 0;
  for (Mask s = 0;; ++s) {
    if (g.is_independent(s)) {
      best = std::max<std::size_t>(best,
                                   static_cast<std::size_t>(graph::popcount(s)));
    }
    if (s == end) break;
  }
  return best;
}

std::size_t domination_number_brute_force(const SmallGraph& g) {
  check_size(g);
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("domination: empty graph");
  }
  const Mask end = g.all();
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (Mask s = 0;; ++s) {
    if (g.is_dominating(s)) {
      best = std::min<std::size_t>(best,
                                   static_cast<std::size_t>(graph::popcount(s)));
    }
    if (s == end) break;
  }
  return best;
}

std::size_t connected_domination_number_brute_force(const SmallGraph& g) {
  check_size(g);
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("connected domination: empty graph");
  }
  if (!g.is_connected(g.all())) {
    throw std::invalid_argument("connected domination: disconnected graph");
  }
  const Mask end = g.all();
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (Mask s = 1;; ++s) {  // a CDS is non-empty
    if (g.is_dominating(s) && g.is_connected(s)) {
      best = std::min<std::size_t>(best,
                                   static_cast<std::size_t>(graph::popcount(s)));
    }
    if (s == end) break;
  }
  return best;
}

bool is_m_fold_cds(const SmallGraph& g, Mask s, std::uint32_t m) {
  s &= g.all();
  if (s == 0) return false;
  Mask outside = g.all() & ~s;
  while (outside != 0) {
    const graph::NodeId v = graph::lowest_bit(outside);
    outside &= outside - 1;
    if (static_cast<std::uint32_t>(graph::popcount(g.neighbors(v) & s)) < m) {
      return false;
    }
  }
  return g.is_connected(s);
}

std::size_t m_fold_cds_number_brute_force(const SmallGraph& g,
                                          std::uint32_t m) {
  check_size(g);
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("m-fold connected domination: empty graph");
  }
  if (!g.is_connected(g.all())) {
    throw std::invalid_argument(
        "m-fold connected domination: disconnected graph");
  }
  const Mask end = g.all();
  // The full vertex set always qualifies (vacuous coverage), so the
  // minimum is well defined for every m.
  std::size_t best = g.num_nodes();
  for (Mask s = 1;; ++s) {
    if (is_m_fold_cds(g, s, m)) {
      best = std::min<std::size_t>(best,
                                   static_cast<std::size_t>(graph::popcount(s)));
    }
    if (s == end) break;
  }
  return best;
}

}  // namespace mcds::exact
