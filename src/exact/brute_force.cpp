#include "exact/brute_force.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mcds::exact {

using graph::Mask;
using graph::SmallGraph;

namespace {
void check_size(const SmallGraph& g) {
  if (g.num_nodes() > 25) {
    throw std::invalid_argument("brute force limited to 25 nodes");
  }
}
}  // namespace

std::size_t independence_number_brute_force(const SmallGraph& g) {
  check_size(g);
  const Mask end = g.all();
  std::size_t best = 0;
  for (Mask s = 0;; ++s) {
    if (g.is_independent(s)) {
      best = std::max<std::size_t>(best,
                                   static_cast<std::size_t>(graph::popcount(s)));
    }
    if (s == end) break;
  }
  return best;
}

std::size_t domination_number_brute_force(const SmallGraph& g) {
  check_size(g);
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("domination: empty graph");
  }
  const Mask end = g.all();
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (Mask s = 0;; ++s) {
    if (g.is_dominating(s)) {
      best = std::min<std::size_t>(best,
                                   static_cast<std::size_t>(graph::popcount(s)));
    }
    if (s == end) break;
  }
  return best;
}

std::size_t connected_domination_number_brute_force(const SmallGraph& g) {
  check_size(g);
  if (g.num_nodes() == 0) {
    throw std::invalid_argument("connected domination: empty graph");
  }
  if (!g.is_connected(g.all())) {
    throw std::invalid_argument("connected domination: disconnected graph");
  }
  const Mask end = g.all();
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (Mask s = 1;; ++s) {  // a CDS is non-empty
    if (g.is_dominating(s) && g.is_connected(s)) {
      best = std::min<std::size_t>(best,
                                   static_cast<std::size_t>(graph::popcount(s)));
    }
    if (s == end) break;
  }
  return best;
}

}  // namespace mcds::exact
