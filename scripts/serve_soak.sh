#!/usr/bin/env bash
# Serve soak smoke: run the mcds_serve demo under sustained synthetic
# load for SOAK_SECONDS (default 60), then SIGTERM it and require a
# clean drain — exit 0 and "leaked requests: 0" in the report. Run it
# against an ASan build tree (SANITIZE=1 scripts/check.sh builds one in
# build-asan) and the same invocation also gates on sanitizer cleanness,
# since any ASan report makes the binary exit non-zero.
#
# Usage: scripts/serve_soak.sh [soak_seconds]
#   BUILD_DIR=...     build tree holding examples/mcds_serve
#                     (default: build)
#   SOAK_SECONDS=...  soak duration (default: 60; positional wins)
#   SOAK_RATE=...     offered load in requests/second (default: 300)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
SOAK="${1:-${SOAK_SECONDS:-60}}"
RATE="${SOAK_RATE:-300}"
BIN="$BUILD_DIR/examples/mcds_serve"

if [[ ! -x "$BIN" ]]; then
  cmake --build "$BUILD_DIR" --target mcds_serve_demo -j "$(nproc)"
fi
if [[ ! -x "$BIN" ]]; then
  echo "serve_soak.sh: demo binary not built: $BIN" >&2
  exit 1
fi

log="$(mktemp)"
trap 'rm -f "$log"' EXIT
ckpt="$(mktemp -u)"

echo "serve_soak: ${SOAK}s at ${RATE} req/s, then SIGTERM drain"
"$BIN" --duration-ms 0 --rate "$RATE" --nodes 40 --churn 0.3 \
  --checkpoint "$ckpt" --checkpoint-every-ms 500 >"$log" 2>&1 &
pid=$!
sleep "$SOAK"
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
rm -f "$ckpt" "$ckpt.tmp"

cat "$log"
if [[ "$status" != 0 ]]; then
  echo "serve_soak: FAIL — mcds_serve exited $status" >&2
  exit 1
fi
if ! grep -q '^stopping (signal)' "$log"; then
  echo "serve_soak: FAIL — no signal-initiated drain in the log" >&2
  exit 1
fi
if ! grep -q '^leaked requests: 0$' "$log"; then
  echo "serve_soak: FAIL — leaked requests (or report missing)" >&2
  exit 1
fi
echo "serve_soak: PASS (clean SIGTERM drain, zero leaks)"
