#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, then every
# reproduction bench. Fails fast on any error; a bench exiting non-zero
# means a *proven* inequality of the paper was violated on some instance.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

status=0
for bench in build/bench/*; do
  if [[ -f "$bench" && -x "$bench" ]]; then
    echo
    "$bench" || status=1
  fi
done
exit "$status"
