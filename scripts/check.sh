#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, then every
# reproduction bench. Fails fast on any error; a bench exiting non-zero
# means a *proven* inequality of the paper was violated on some instance.
#
# SANITIZE=1 builds into build-asan with AddressSanitizer + UBSan
# (-DMCDS_SANITIZE=ON) and runs the test suite only — the reproduction
# benches take too long under instrumentation to be part of the gate.
#
# SANITIZE=tsan builds into build-tsan with ThreadSanitizer
# (-DMCDS_SANITIZE_THREAD=ON) and runs only the threaded suites plus the
# Km* fault-tolerance suites (the Par* tests drive the pool, the batch
# engine, the parallel builder/validator overloads and — via ParDist* —
# the distributed runtime's parallel round engine; the Dyn* suites
# drive the incremental engine, including concurrent independent
# engines; the Km* suites exercise the (k,m) builders and the
# crash-survival harness; the Serve* suites drive the solve server's
# batcher/watchdog/checkpointer threads under load). The remaining
# serial suites learn nothing from TSan and would multiply the runtime
# ~10x.
#
# RUN_BENCH=1 additionally records a performance snapshot via
# scripts/bench_snapshot.sh (opt-in: the google-benchmark run takes
# minutes and is only meaningful on a quiet machine).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
cmake_extra=()
ctest_extra=()
if [[ "${SANITIZE:-0}" == "1" ]]; then
  BUILD_DIR=build-asan
  cmake_extra=(-DMCDS_SANITIZE=ON -DMCDS_BUILD_BENCH=OFF)
elif [[ "${SANITIZE:-0}" == "tsan" ]]; then
  BUILD_DIR=build-tsan
  cmake_extra=(-DMCDS_SANITIZE_THREAD=ON -DMCDS_BUILD_BENCH=OFF)
  ctest_extra=(-R '^(Par|Dyn|Streams/Dyn|Km|Serve)')
fi

# Prefer Ninja when available, but match ROADMAP's tier-1 command (the
# default generator) when it is not.
generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi
cmake -B "$BUILD_DIR" -S . "${generator[@]}" "${cmake_extra[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  "${ctest_extra[@]}"

if [[ "${SANITIZE:-0}" != "0" ]]; then
  echo "sanitized test suite passed (SANITIZE=${SANITIZE})"
  exit 0
fi

# Observability smoke check: a traced CLI run must emit parseable JSON
# (Chrome trace-event format), a parseable metrics registry, Prometheus
# text exposition, flamegraph folded stacks, a causal critical-path
# report and periodic JSONL registry snapshots.
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
"$BUILD_DIR"/examples/mcds_cli generate --nodes 80 --side 7 --seed 3 \
  --out "$obs_dir/smoke.pts" >/dev/null
"$BUILD_DIR"/examples/mcds_cli dist --in "$obs_dir/smoke.pts" --algo greedy \
  --drop 0.05 --seed 7 --trace "$obs_dir/smoke_trace.json" \
  --metrics "$obs_dir/smoke_metrics.json" \
  --prom "$obs_dir/smoke.prom" \
  --profile-folded "$obs_dir/smoke.folded" \
  --critical-path --causal-jsonl "$obs_dir/smoke_causal.jsonl" \
  --snapshot-jsonl "$obs_dir/smoke_snapshots.jsonl" --snapshot-every 1 \
  > "$obs_dir/smoke_dist.out"
grep -q '^critical path (messages, summed over phases): ' \
  "$obs_dir/smoke_dist.out"
grep -q '^# TYPE mcds_' "$obs_dir/smoke.prom"
grep -Eq '^[^ ;]+(;[^ ;]+)* [0-9]+$' "$obs_dir/smoke.folded"
grep -q '"span":1,' "$obs_dir/smoke_causal.jsonl"
grep -q '"seq":0,' "$obs_dir/smoke_snapshots.jsonl"
echo "telemetry export smoke check passed"
# (k,m)-CDS smoke check: the fault-tolerant solve path must build a
# backbone that its own witness validator accepts (non-zero exit and the
# defect description otherwise).
"$BUILD_DIR"/examples/mcds_cli solve --in "$obs_dir/smoke.pts" --km 2,2 \
  --quiet | grep -q '^algorithm: kmcds (2,2)$'
echo "(k,m)-CDS smoke check passed"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$obs_dir/smoke_trace.json" "$obs_dir/smoke_metrics.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
assert trace["traceEvents"], "trace must contain events"
assert any(e["ph"] == "B" for e in trace["traceEvents"]), "no spans in trace"
json.load(open(sys.argv[2]))
print("observability smoke check passed:",
      len(trace["traceEvents"]), "trace events")
EOF
else
  # No python3: at least require non-empty output with the expected key.
  grep -q '"traceEvents"' "$obs_dir/smoke_trace.json"
  echo "observability smoke check passed (python3 unavailable; key check)"
fi

status=0
for bench in "$BUILD_DIR"/bench/*; do
  if [[ -f "$bench" && -x "$bench" ]]; then
    echo
    "$bench" || status=1
  fi
done

if [[ "${RUN_BENCH:-0}" == "1" && "$status" == "0" ]]; then
  scripts/bench_snapshot.sh
fi
exit "$status"
