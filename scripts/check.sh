#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, then every
# reproduction bench. Fails fast on any error; a bench exiting non-zero
# means a *proven* inequality of the paper was violated on some instance.
#
# SANITIZE=1 builds into build-asan with AddressSanitizer + UBSan
# (-DMCDS_SANITIZE=ON) and runs the test suite only — the reproduction
# benches take too long under instrumentation to be part of the gate.
#
# RUN_BENCH=1 additionally records a performance snapshot via
# scripts/bench_snapshot.sh (opt-in: the google-benchmark run takes
# minutes and is only meaningful on a quiet machine).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
cmake_extra=()
if [[ "${SANITIZE:-0}" == "1" ]]; then
  BUILD_DIR=build-asan
  cmake_extra=(-DMCDS_SANITIZE=ON -DMCDS_BUILD_BENCH=OFF)
fi

# Prefer Ninja when available, but match ROADMAP's tier-1 command (the
# default generator) when it is not.
generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi
cmake -B "$BUILD_DIR" -S . "${generator[@]}" "${cmake_extra[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "${SANITIZE:-0}" == "1" ]]; then
  echo "sanitized test suite passed"
  exit 0
fi

status=0
for bench in "$BUILD_DIR"/bench/*; do
  if [[ -f "$bench" && -x "$bench" ]]; then
    echo
    "$bench" || status=1
  fi
done

if [[ "${RUN_BENCH:-0}" == "1" && "$status" == "0" ]]; then
  scripts/bench_snapshot.sh
fi
exit "$status"
