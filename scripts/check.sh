#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, then every
# reproduction bench. Fails fast on any error; a bench exiting non-zero
# means a *proven* inequality of the paper was violated on some instance.
#
# RUN_BENCH=1 additionally records a performance snapshot via
# scripts/bench_snapshot.sh (opt-in: the google-benchmark run takes
# minutes and is only meaningful on a quiet machine).
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when available, but match ROADMAP's tier-1 command (the
# default generator) when it is not.
generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi
cmake -B build -S . "${generator[@]}"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

status=0
for bench in build/bench/*; do
  if [[ -f "$bench" && -x "$bench" ]]; then
    echo
    "$bench" || status=1
  fi
done

if [[ "${RUN_BENCH:-0}" == "1" && "$status" == "0" ]]; then
  scripts/bench_snapshot.sh
fi
exit "$status"
