#!/usr/bin/env bash
# Records a performance snapshot into BENCH_<topic>.json at the repo
# root (google-benchmark JSON). Convention: BENCH_<topic>.json snapshots
# are committed alongside the PR that moves the needle, so future PRs
# have a baseline to compare against — see README.md.
#
# Snapshots are only meaningful from an optimized build, so this script
# configures its build tree with CMAKE_BUILD_TYPE=Release and refuses to
# write a snapshot whose recorded context says otherwise (a debug-built
# harness is 5-20x slower and would poison every later comparison).
#
# Usage: scripts/bench_snapshot.sh [extra perf_scaling args...]
#   BUILD_DIR=...     build tree to use (default: build-bench, configured
#                     Release by this script)
#   BENCH_TOPIC=...   snapshot topic: phase2 (default), fault, obs,
#                     partition, par, dynamic, survivability, serve or
#                     dist (serial-vs-parallel round execution)
#   BENCH_FILTER=...  benchmark regex (default: per-topic selection)
#   ALLOW_DEBUG_LIBBENCHMARK=1
#                     accept a google-benchmark *library* that reports
#                     library_build_type "debug". Distro packages (e.g.
#                     Debian's libbenchmark) are compiled -O2 but without
#                     NDEBUG, so they self-report "debug" even though the
#                     harness and the code under test are Release; the
#                     harness's own flags are recorded separately as
#                     mcds_build_type, which is always enforced.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
BENCH_TOPIC="${BENCH_TOPIC:-phase2}"
case "$BENCH_TOPIC" in
  phase2) default_filter="BM_GreedyCds|BM_GreedyConnectorsIncremental|BM_GreedyConnectorsReference|BM_BuildUdg/" ;;
  fault)  default_filter="BM_FaultFreeRuntime|BM_FaultInjectedRuntime|BM_ReliableWaf" ;;
  obs)    default_filter="BM_GreedyConnectorsIncremental|BM_GreedyConnectorsObserved|BM_CausalTracedRuntime" ;;
  partition) default_filter="BM_HeartbeatRuntime|BM_PartitionedRuntime" ;;
  par)    default_filter="BM_BatchSolve|BM_BuildUdgParallel|BM_GreedyConnectorsCsr|BM_GreedyConnectorsNested" ;;
  dynamic) default_filter="BM_DynamicChurn|BM_DynamicRebuild" ;;
  survivability) default_filter="BM_SurvivabilityBuild|BM_SurvivabilityMassacre" ;;
  serve)  default_filter="BM_ServeRoundTrip|BM_ServeOverloadedThroughput" ;;
  dist)   default_filter="BM_DistMisRounds|BM_DistConnectorRounds" ;;
  *)      default_filter=".*" ;;
esac
BENCH_FILTER="${BENCH_FILTER:-$default_filter}"
OUT="BENCH_${BENCH_TOPIC}.json"
BIN="$BUILD_DIR/bench/perf_scaling"

# Always (re)configure the snapshot tree as Release: an existing tree
# configured RelWithDebInfo or Debug must not silently become the
# baseline recorder.
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target perf_scaling -j "$(nproc)"
# Fail loudly rather than writing a partial/empty snapshot: a missing
# binary here means the build above was skipped or failed.
if [[ ! -x "$BIN" ]]; then
  echo "bench_snapshot.sh: benchmark binary not built: $BIN" >&2
  echo "bench_snapshot.sh: refusing to write $OUT" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter="$BENCH_FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

# Provenance: stamp the recording commit and a wall-clock date into the
# snapshot context, so every committed BENCH_*.json says what code
# produced it (bench_compare.py prints both when a comparison drifts).
GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=""
if ! git diff --quiet HEAD 2>/dev/null; then GIT_DIRTY="-dirty"; fi
SNAP_DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Gate on the recorded context before declaring the snapshot good.
# mcds_build_type is stamped by perf_scaling's main() from its own
# compile flags (NDEBUG + __OPTIMIZE__) and must say "release";
# library_build_type is what the google-benchmark library says about
# itself and is overridable for distro packages (see header comment).
python3 - "$OUT" "$GIT_SHA$GIT_DIRTY" "$SNAP_DATE" <<'EOF' || { rm -f "$OUT"; exit 1; }
import json, os, sys
doc = json.load(open(sys.argv[1]))
ctx = doc["context"]
mcds = ctx.get("mcds_build_type")
if mcds != "release":
    print(f"bench_snapshot.sh: harness built without optimization "
          f"(mcds_build_type: {mcds!r}); refusing to record a snapshot. "
          f"This script configures Release itself -- a stale BUILD_DIR "
          f"or CXXFLAGS override is forcing a debug build.",
          file=sys.stderr)
    sys.exit(1)
lib = ctx.get("library_build_type")
if lib != "release" and os.environ.get("ALLOW_DEBUG_LIBBENCHMARK") != "1":
    print(f"bench_snapshot.sh: google-benchmark library reports "
          f"library_build_type: {lib!r}. If this is a distro package "
          f"built without NDEBUG (harness code itself is verified "
          f"optimized above), re-run with ALLOW_DEBUG_LIBBENCHMARK=1.",
          file=sys.stderr)
    sys.exit(1)
ctx["mcds_git_sha"] = sys.argv[2]
ctx["mcds_snapshot_date"] = sys.argv[3]
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF

echo "wrote $OUT"
