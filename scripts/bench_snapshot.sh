#!/usr/bin/env bash
# Records the phase-2 performance trajectory into BENCH_phase2.json at
# the repo root (google-benchmark JSON). Convention: BENCH_<topic>.json
# snapshots are committed alongside the PR that moves the needle, so
# future PRs have a baseline to compare against — see README.md.
#
# Usage: scripts/bench_snapshot.sh [extra perf_scaling args...]
#   BUILD_DIR=...   build tree to use (default: build)
#   BENCH_FILTER=...  benchmark regex (default: the phase-2 benches)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH_FILTER="${BENCH_FILTER:-BM_GreedyCds|BM_GreedyConnectors|BM_BuildUdg}"
OUT="BENCH_phase2.json"

if [[ ! -x "$BUILD_DIR/bench/perf_scaling" ]]; then
  if [[ ! -d "$BUILD_DIR" ]]; then
    cmake -B "$BUILD_DIR" -S .
  fi
  cmake --build "$BUILD_DIR" --target perf_scaling -j "$(nproc)"
fi

"$BUILD_DIR/bench/perf_scaling" \
  --benchmark_filter="$BENCH_FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $OUT"
