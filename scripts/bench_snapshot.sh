#!/usr/bin/env bash
# Records a performance snapshot into BENCH_<topic>.json at the repo
# root (google-benchmark JSON). Convention: BENCH_<topic>.json snapshots
# are committed alongside the PR that moves the needle, so future PRs
# have a baseline to compare against — see README.md.
#
# Usage: scripts/bench_snapshot.sh [extra perf_scaling args...]
#   BUILD_DIR=...     build tree to use (default: build)
#   BENCH_TOPIC=...   snapshot topic: phase2 (default), fault, obs or
#                     partition
#   BENCH_FILTER=...  benchmark regex (default: per-topic selection)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH_TOPIC="${BENCH_TOPIC:-phase2}"
case "$BENCH_TOPIC" in
  phase2) default_filter="BM_GreedyCds|BM_GreedyConnectorsIncremental|BM_GreedyConnectorsReference|BM_BuildUdg" ;;
  fault)  default_filter="BM_FaultFreeRuntime|BM_FaultInjectedRuntime|BM_ReliableWaf" ;;
  obs)    default_filter="BM_GreedyConnectorsIncremental|BM_GreedyConnectorsObserved" ;;
  partition) default_filter="BM_HeartbeatRuntime|BM_PartitionedRuntime" ;;
  *)      default_filter=".*" ;;
esac
BENCH_FILTER="${BENCH_FILTER:-$default_filter}"
OUT="BENCH_${BENCH_TOPIC}.json"
BIN="$BUILD_DIR/bench/perf_scaling"

if [[ ! -x "$BIN" ]]; then
  if [[ ! -d "$BUILD_DIR" ]]; then
    cmake -B "$BUILD_DIR" -S .
  fi
  cmake --build "$BUILD_DIR" --target perf_scaling -j "$(nproc)"
fi
# Fail loudly rather than writing a partial/empty snapshot: a missing
# binary here means the build above was skipped or failed.
if [[ ! -x "$BIN" ]]; then
  echo "bench_snapshot.sh: benchmark binary not built: $BIN" >&2
  echo "bench_snapshot.sh: refusing to write $OUT" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter="$BENCH_FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $OUT"
