#!/usr/bin/env bash
# Open-ended chaos fuzzing across the three randomized fault suites:
#   partition  tests/test_dist_partition_chaos  PartitionChaos.RandomizedPartitionSchedules
#   dist       tests/test_dist_chaos            Chaos.RandomizedFaultGrid
#   km         tests/test_km_chaos              KmChaos.RandomizedCrashSchedulesHoldInvariants
#   serve      tests/test_serve_chaos           ServeChaos.SustainedOverloadHoldsInvariants
# The time budget is shared: iterations round-robin over the suites with
# a fresh base seed each, so a 300 s run splits roughly evenly between
# partition schedules, the protocol fault grid and the (k,m) crash
# invariants. A failing scenario is delta-debugged down to a minimal
# FaultPlan by the owning test and the minimized plan JSON is archived
# (CHAOS_FUZZ_OUT) for replay; the per-suite replay line printed on
# failure reproduces the run exactly.
#
# Usage: scripts/chaos_fuzz.sh [budget_seconds]
#   BUILD_DIR=...        build tree to use (default: build)
#   CHAOS_BUDGET=...     time budget in seconds (default: 300; the
#                        positional argument wins when both are given)
#   CHAOS_FUZZ_SEED=...  starting base seed (default: derived from date,
#                        printed so any run can be reproduced exactly)
#   CHAOS_FUZZ_OUT=...   directory for minimized repro plans
#                        (default: chaos-artifacts)
#   CHAOS_SUITES=...     comma-separated subset of partition,dist,km,
#                        serve (default: all four)
#   CHAOS_THREADS=...    run the dist/partition runtime legs through the
#                        parallel round engine on this many workers
#                        (default: unset = serial runtime). Failing
#                        seeds are replayed serially by the owning test
#                        before ddmin, so minimized plans always carry
#                        the serial (golden) verdict.
#
# Exit status: 0 if every iteration passed, 1 on the first failure (the
# failing suite, seed and any minimized plan files are reported).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BUDGET="${1:-${CHAOS_BUDGET:-300}}"
SEED="${CHAOS_FUZZ_SEED:-$(date +%s)}"
OUT="${CHAOS_FUZZ_OUT:-chaos-artifacts}"
SUITES="${CHAOS_SUITES:-partition,dist,km,serve}"
THREADS="${CHAOS_THREADS:-}"

declare -A BIN FILTER
BIN[partition]="$BUILD_DIR/tests/test_dist_partition_chaos"
FILTER[partition]='PartitionChaos.RandomizedPartitionSchedules'
BIN[dist]="$BUILD_DIR/tests/test_dist_chaos"
FILTER[dist]='Chaos.RandomizedFaultGrid'
BIN[km]="$BUILD_DIR/tests/test_km_chaos"
FILTER[km]='KmChaos.RandomizedCrashSchedulesHoldInvariants'
BIN[serve]="$BUILD_DIR/tests/test_serve_chaos"
FILTER[serve]='ServeChaos.SustainedOverloadHoldsInvariants'

IFS=',' read -r -a suites <<<"$SUITES"
for suite in "${suites[@]}"; do
  if [[ -z "${BIN[$suite]:-}" ]]; then
    echo "chaos_fuzz.sh: unknown suite '$suite' (want partition,dist,km,serve)" >&2
    exit 2
  fi
  if [[ ! -x "${BIN[$suite]}" ]]; then
    if [[ ! -d "$BUILD_DIR" ]]; then
      cmake -B "$BUILD_DIR" -S .
    fi
    cmake --build "$BUILD_DIR" --target "$(basename "${BIN[$suite]}")" \
      -j "$(nproc)"
  fi
  if [[ ! -x "${BIN[$suite]}" ]]; then
    echo "chaos_fuzz.sh: test binary not built: ${BIN[$suite]}" >&2
    exit 1
  fi
done

mkdir -p "$OUT"
echo "chaos_fuzz: budget ${BUDGET}s over suites ${SUITES}," \
  "base seed $SEED, artifacts in $OUT/" \
  "${THREADS:+(parallel runtime, CHAOS_THREADS=$THREADS)}"

deadline=$((SECONDS + BUDGET))
iteration=0
while (( SECONDS < deadline )); do
  iteration=$((iteration + 1))
  seed=$((SEED + iteration))
  suite="${suites[$(( (iteration - 1) % ${#suites[@]} ))]}"
  echo "chaos_fuzz: iteration $iteration, suite $suite" \
    "(CHAOS_FUZZ_SEED=$seed)"
  if ! CHAOS_FUZZ_SEED="$seed" CHAOS_FUZZ_OUT="$OUT" \
      CHAOS_THREADS="$THREADS" "${BIN[$suite]}" \
      --gtest_filter="${FILTER[$suite]}" --gtest_brief=1; then
    echo "chaos_fuzz: FAILURE at iteration $iteration in suite $suite" >&2
    echo "chaos_fuzz: replay with CHAOS_FUZZ_SEED=$seed" \
      "${THREADS:+CHAOS_THREADS=$THREADS} ${BIN[$suite]}" \
      "--gtest_filter=${FILTER[$suite]}" >&2
    if compgen -G "$OUT/*.json" >/dev/null; then
      echo "chaos_fuzz: minimized plans:" >&2
      ls -l "$OUT"/*.json >&2
    fi
    exit 1
  fi
done
echo "chaos_fuzz: $iteration iteration(s) passed inside the ${BUDGET}s budget"
