#!/usr/bin/env bash
# Open-ended partition-chaos fuzzing: re-runs the randomized scenario
# suite in tests/test_dist_partition_chaos.cpp with a fresh base seed
# per iteration until a time budget runs out. Each iteration covers 240
# randomized partition/crash/link schedules; a failing scenario is
# delta-debugged down to a minimal FaultPlan by the test itself and the
# minimized plan JSON is archived (CHAOS_FUZZ_OUT) for replay.
#
# Usage: scripts/chaos_fuzz.sh [budget_seconds]
#   BUILD_DIR=...        build tree to use (default: build)
#   CHAOS_BUDGET=...     time budget in seconds (default: 300; the
#                        positional argument wins when both are given)
#   CHAOS_FUZZ_SEED=...  starting base seed (default: derived from date,
#                        printed so any run can be reproduced exactly)
#   CHAOS_FUZZ_OUT=...   directory for minimized repro plans
#                        (default: chaos-artifacts)
#
# Exit status: 0 if every iteration passed, 1 on the first failure (the
# failing seed and any minimized plan files are reported).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BUDGET="${1:-${CHAOS_BUDGET:-300}}"
SEED="${CHAOS_FUZZ_SEED:-$(date +%s)}"
OUT="${CHAOS_FUZZ_OUT:-chaos-artifacts}"
BIN="$BUILD_DIR/tests/test_dist_partition_chaos"

if [[ ! -x "$BIN" ]]; then
  if [[ ! -d "$BUILD_DIR" ]]; then
    cmake -B "$BUILD_DIR" -S .
  fi
  cmake --build "$BUILD_DIR" --target test_dist_partition_chaos -j "$(nproc)"
fi
if [[ ! -x "$BIN" ]]; then
  echo "chaos_fuzz.sh: test binary not built: $BIN" >&2
  exit 1
fi

mkdir -p "$OUT"
echo "chaos_fuzz: budget ${BUDGET}s, base seed $SEED, artifacts in $OUT/"

deadline=$((SECONDS + BUDGET))
iteration=0
while (( SECONDS < deadline )); do
  iteration=$((iteration + 1))
  seed=$((SEED + iteration))
  echo "chaos_fuzz: iteration $iteration (CHAOS_FUZZ_SEED=$seed)"
  if ! CHAOS_FUZZ_SEED="$seed" CHAOS_FUZZ_OUT="$OUT" "$BIN" \
      --gtest_filter='PartitionChaos.RandomizedPartitionSchedules' \
      --gtest_brief=1; then
    echo "chaos_fuzz: FAILURE at iteration $iteration" >&2
    echo "chaos_fuzz: replay with CHAOS_FUZZ_SEED=$seed $BIN" >&2
    if compgen -G "$OUT/*.json" >/dev/null; then
      echo "chaos_fuzz: minimized plans:" >&2
      ls -l "$OUT"/*.json >&2
    fi
    exit 1
  fi
done
echo "chaos_fuzz: $iteration iteration(s) passed inside the ${BUDGET}s budget"
