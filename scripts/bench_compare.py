#!/usr/bin/env python3
"""Soft-gate comparison of a fresh benchmark snapshot against a committed
baseline BENCH_<topic>.json.

Compares per-benchmark real_time for every name present in both files
(run_type "iteration" only; aggregates and BigO fits are skipped) and
reports the ratio fresh/baseline. Regressions beyond the tolerance band
are listed and reflected in the exit code -- but the gate is *soft* by
design: CI runs it with `|| true` visibility semantics (warn, don't
fail) because shared runners are noisy and the committed baselines may
come from different hardware. The hard gate remains a human re-recording
the baseline via scripts/bench_snapshot.sh on quiet hardware.

Usage: bench_compare.py BASELINE.json FRESH.json [--tolerance 0.25]

Exit codes: 0 all compared benchmarks within tolerance (or nothing to
compare), 1 at least one regression beyond tolerance, 2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def iteration_times(doc):
    """name -> real_time (ns) for plain iteration runs."""
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        t = b.get("real_time")
        name = b.get("name")
        if name and isinstance(t, (int, float)) and t > 0:
            out[name] = float(t)
    return out


def provenance(doc):
    ctx = doc.get("context", {})
    sha = ctx.get("mcds_git_sha", "unknown")
    date = ctx.get("mcds_snapshot_date", ctx.get("date", "unknown"))
    return f"{sha} @ {date}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before a benchmark is flagged "
        "(default 0.25 = +25%%)",
    )
    args = ap.parse_args()

    base_doc, fresh_doc = load(args.baseline), load(args.fresh)
    base, fresh = iteration_times(base_doc), iteration_times(fresh_doc)
    common = sorted(base.keys() & fresh.keys())

    print(f"baseline: {args.baseline} ({provenance(base_doc)})")
    print(f"fresh:    {args.fresh} ({provenance(fresh_doc)})")
    if not common:
        print("bench_compare: no common iteration benchmarks; nothing to do")
        return 0

    width = max(len(n) for n in common)
    regressions = []
    for name in common:
        ratio = fresh[name] / base[name]
        flag = ""
        if ratio > 1.0 + args.tolerance:
            flag = "  << REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1.0 / (1.0 + args.tolerance):
            flag = "  (faster)"
        print(
            f"  {name:<{width}}  {base[name]:>14.1f} -> {fresh[name]:>14.1f} ns"
            f"  x{ratio:.3f}{flag}"
        )

    skipped = sorted((base.keys() | fresh.keys()) - set(common))
    if skipped:
        print(f"  (not in both files, skipped: {', '.join(skipped)})")

    if regressions:
        print(
            f"bench_compare: {len(regressions)} benchmark(s) slower than "
            f"baseline by more than {args.tolerance:.0%}:"
        )
        for name, ratio in regressions:
            print(f"  {name}: x{ratio:.3f}")
        print(
            "bench_compare: soft gate -- investigate, and re-record the "
            "baseline with scripts/bench_snapshot.sh if the change is "
            "intentional."
        )
        return 1
    print(f"bench_compare: all {len(common)} benchmark(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
