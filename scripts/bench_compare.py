#!/usr/bin/env python3
"""Soft-gate comparison of fresh benchmark snapshots against committed
baseline BENCH_<topic>.json files.

Two modes:

  bench_compare.py BASELINE.json FRESH.json [--tolerance 0.25]
      Compare one pair of snapshot files.

  bench_compare.py --all BASELINE_DIR FRESH_DIR
      Compare every BENCH_<topic>.json present in *both* directories,
      using the per-topic tolerance table below (override everything
      with --tolerance). Topics whose fresh snapshot is missing are
      listed but never fatal — a topic that failed to record on a busy
      runner must not mask real regressions elsewhere.

Per-topic tolerances: microbenchmarks of pure CPU code (phase2) can be
held tight; topics that measure thread pools, schedulers or wall-clock
shaped workloads (par, serve) need slack on shared runners. The table
is the single place that encodes how noisy each topic inherently is.

Compares per-benchmark real_time for every name present in both files
(run_type "iteration" only; aggregates and BigO fits are skipped) and
reports the ratio fresh/baseline. Regressions beyond the tolerance band
are listed and reflected in the exit code -- but the gate is *soft* by
design: CI runs it with warn-don't-fail semantics because shared
runners are noisy and the committed baselines may come from different
hardware. The hard gate remains a human re-recording the baseline via
scripts/bench_snapshot.sh on quiet hardware.

Exit codes: 0 all compared benchmarks within tolerance (or nothing to
compare), 1 at least one regression beyond tolerance, 2 usage/IO error.
"""

import argparse
import glob
import json
import os
import sys

# Allowed fractional slowdown per topic before a benchmark is flagged.
# Keep in sync with the topics scripts/bench_snapshot.sh knows about.
TOPIC_TOLERANCE = {
    "phase2": 0.25,        # pure CPU, low variance
    "obs": 0.50,           # sink setup inside the timed loop
    "fault": 0.35,
    "partition": 0.35,
    "par": 0.50,           # thread pool: scheduler noise
    "dynamic": 0.35,
    "survivability": 0.35,
    "serve": 0.60,         # wall-clock shaped load, sleeps + threads
    "dist": 0.50,          # worker pools: scheduler noise
}
DEFAULT_TOLERANCE = 0.25


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def iteration_times(doc):
    """name -> real_time (ns) for plain iteration runs."""
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        t = b.get("real_time")
        name = b.get("name")
        if name and isinstance(t, (int, float)) and t > 0:
            out[name] = float(t)
    return out


def provenance(doc):
    ctx = doc.get("context", {})
    sha = ctx.get("mcds_git_sha", "unknown")
    date = ctx.get("mcds_snapshot_date", ctx.get("date", "unknown"))
    return f"{sha} @ {date}"


def compare_pair(baseline_path, fresh_path, tolerance):
    """Prints the comparison; returns (regressions, compared_count)."""
    base_doc, fresh_doc = load(baseline_path), load(fresh_path)
    base, fresh = iteration_times(base_doc), iteration_times(fresh_doc)
    common = sorted(base.keys() & fresh.keys())

    print(f"baseline: {baseline_path} ({provenance(base_doc)})")
    print(f"fresh:    {fresh_path} ({provenance(fresh_doc)})")
    if not common:
        print("bench_compare: no common iteration benchmarks; nothing to do")
        return [], 0

    width = max(len(n) for n in common)
    regressions = []
    for name in common:
        ratio = fresh[name] / base[name]
        flag = ""
        if ratio > 1.0 + tolerance:
            flag = "  << REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1.0 / (1.0 + tolerance):
            flag = "  (faster)"
        print(
            f"  {name:<{width}}  {base[name]:>14.1f} -> {fresh[name]:>14.1f} ns"
            f"  x{ratio:.3f}{flag}"
        )

    skipped = sorted((base.keys() | fresh.keys()) - set(common))
    if skipped:
        print(f"  (not in both files, skipped: {', '.join(skipped)})")
    return regressions, len(common)


def topic_of(path):
    name = os.path.basename(path)
    if name.startswith("BENCH_") and name.endswith(".json"):
        return name[len("BENCH_"):-len(".json")]
    return None


def run_all(baseline_dir, fresh_dir, tolerance_override):
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if not baselines:
        print(f"bench_compare: no BENCH_*.json under {baseline_dir}",
              file=sys.stderr)
        return 2
    all_regressions = []
    compared_topics = 0
    for baseline in baselines:
        topic = topic_of(baseline)
        fresh = os.path.join(fresh_dir, os.path.basename(baseline))
        if not os.path.isfile(fresh):
            print(f"-- topic {topic}: fresh snapshot missing, skipped")
            continue
        tol = (tolerance_override if tolerance_override is not None
               else TOPIC_TOLERANCE.get(topic, DEFAULT_TOLERANCE))
        print(f"-- topic {topic} (tolerance +{tol:.0%})")
        regressions, compared = compare_pair(baseline, fresh, tol)
        if compared:
            compared_topics += 1
        all_regressions += [(topic, n, r) for n, r in regressions]
    print(f"bench_compare: compared {compared_topics} topic(s)")
    if all_regressions:
        print("bench_compare: regressions beyond per-topic tolerance:")
        for topic, name, ratio in all_regressions:
            print(f"  [{topic}] {name}: x{ratio:.3f}")
        print(
            "bench_compare: soft gate -- investigate, and re-record the "
            "baseline with scripts/bench_snapshot.sh if the change is "
            "intentional."
        )
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline", help="baseline file, or directory with --all")
    ap.add_argument("fresh", help="fresh file, or directory with --all")
    ap.add_argument(
        "--all",
        action="store_true",
        help="treat the two arguments as directories and compare every "
        "BENCH_<topic>.json present in both, with per-topic tolerances",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional slowdown before a benchmark is flagged "
        "(default: per-topic table with --all, else 0.25)",
    )
    args = ap.parse_args()

    if args.all:
        return run_all(args.baseline, args.fresh, args.tolerance)

    tol = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    regressions, compared = compare_pair(args.baseline, args.fresh, tol)
    if regressions:
        print(
            f"bench_compare: {len(regressions)} benchmark(s) slower than "
            f"baseline by more than {tol:.0%}:"
        )
        for name, ratio in regressions:
            print(f"  {name}: x{ratio:.3f}")
        print(
            "bench_compare: soft gate -- investigate, and re-record the "
            "baseline with scripts/bench_snapshot.sh if the change is "
            "intentional."
        )
        return 1
    print(f"bench_compare: all {compared} benchmark(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
